package netsim

import (
	"sync/atomic"
	"time"

	"repro/internal/timeseries"
)

// Telemetry series names, as they appear in /debug/timeseries and in the
// JSONL/CSV export.
const (
	// SeriesRouteLatency is the per-request wall-clock routing latency
	// histogram (seconds; p50/p95/p99 per window).
	SeriesRouteLatency = "route_latency_seconds"
	// SeriesBlocking is the per-window blocking probability: blocked
	// requests over offered requests, 0 on an empty window.
	SeriesBlocking = "blocking"
	// SeriesAccepted counts connections established per window.
	SeriesAccepted = "accepted"
	// SeriesReroutes counts connection reroutes per window (reconfiguration
	// moves and passive restorations).
	SeriesReroutes = "reroutes"
	// SeriesReconfigs counts reconfiguration events per window — the
	// paper's §4 disruption metric as a curve instead of a total.
	SeriesReconfigs = "reconfigs"
	// SeriesActiveConns gauges the live connection count, sampled at each
	// window seal.
	SeriesActiveConns = "active_conns"
	// SeriesLinkLoadMean and SeriesLinkLoadMax gauge per-link ρ(e)
	// aggregates, sampled at each window seal; the max is the network load
	// ρ of Eq. 2.
	SeriesLinkLoadMean = "link_load_mean"
	SeriesLinkLoadMax  = "link_load_max"
	// SeriesFragMean gauges mean first-fit wavelength fragmentation.
	SeriesFragMean = "frag_mean"
)

// Telemetry is the simulator's windowed time-series bundle: a collector on
// a sim-time clock, the routing/blocking/reconfiguration series, and a
// per-window network-state probe whose latest snapshot backs /debug/net.
// A nil *Telemetry is permanently off: every method is a no-op, and the
// simulator's hot path costs only nil checks (pinned by the alloc
// regression test). One Telemetry serves one Sim.
type Telemetry struct {
	clock *timeseries.SimClock
	col   *timeseries.Collector

	routeLat  *timeseries.Histogram
	blocking  *timeseries.Ratio
	accepted  *timeseries.Rate
	reroutes  *timeseries.Rate
	reconfigs *timeseries.Rate
	active    *timeseries.Gauge
	loadMean  *timeseries.Gauge
	loadMax   *timeseries.Gauge
	fragMean  *timeseries.Gauge

	netState atomic.Pointer[timeseries.NetState]
	bound    atomic.Bool
}

// NewTelemetry returns a telemetry bundle cutting windows of window
// sim-seconds, retaining the last retention sealed windows in memory
// (timeseries.DefaultRetention if 0). Attach it via Config.Telemetry.
func NewTelemetry(window float64, retention int) *Telemetry {
	clock := timeseries.NewSimClock()
	col := timeseries.New(timeseries.Config{Window: window, Retention: retention, Clock: clock})
	return &Telemetry{
		clock:     clock,
		col:       col,
		routeLat:  col.Histogram(SeriesRouteLatency, nil),
		blocking:  col.Ratio(SeriesBlocking),
		accepted:  col.Rate(SeriesAccepted),
		reroutes:  col.Rate(SeriesReroutes),
		reconfigs: col.Rate(SeriesReconfigs),
		active:    col.Gauge(SeriesActiveConns),
		loadMean:  col.Gauge(SeriesLinkLoadMean),
		loadMax:   col.Gauge(SeriesLinkLoadMax),
		fragMean:  col.Gauge(SeriesFragMean),
	}
}

// Collector exposes the underlying collector (nil for nil telemetry) for
// export sinks and the /debug/timeseries endpoint.
func (t *Telemetry) Collector() *timeseries.Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// NetState returns the latest per-link utilization snapshot (sampled at the
// last window seal), or nil before the first seal. Safe from any goroutine.
func (t *Telemetry) NetState() *timeseries.NetState {
	if t == nil {
		return nil
	}
	return t.netState.Load()
}

// bind hooks the telemetry to one simulator: the window-seal probe samples
// that sim's network and live-connection count. A second bind panics — two
// sims writing one collector would interleave their curves.
func (t *Telemetry) bind(s *Sim) {
	if t == nil {
		return
	}
	if !t.bound.CompareAndSwap(false, true) {
		panic("netsim: Telemetry already bound to a simulator")
	}
	t.col.OnSeal(func(at float64) {
		ns := timeseries.ProbeNetwork(s.net, at, len(s.conns))
		t.loadMean.Set(ns.MeanLoad)
		t.loadMax.Set(ns.MaxLoad)
		t.fragMean.Set(ns.MeanFrag)
		t.active.Set(float64(ns.ActiveConns))
		t.netState.Store(ns)
	})
}

// advance pushes the sim clock to t and seals any completed windows.
func (t *Telemetry) advance(at float64) {
	if t == nil {
		return
	}
	t.clock.Advance(at)
	t.col.Advance(at)
}

// finish seals the final (partial) window at end of run.
//
//wdm:coldpath runs once at the end of a simulation
func (t *Telemetry) finish() {
	if t == nil {
		return
	}
	t.col.Seal()
}

// routeStart stamps the start of a routing computation. Returns the zero
// time — without reading the clock — on nil telemetry.
func (t *Telemetry) routeStart() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// routeDone records one routed arrival: wall-clock latency into the
// windowed histogram and the outcome into the blocking ratio and accepted
// rate.
func (t *Telemetry) routeDone(t0 time.Time, blocked bool) {
	if t == nil {
		return
	}
	t.routeLat.Observe(time.Since(t0).Seconds())
	t.blocking.Observe(blocked)
	if !blocked {
		t.accepted.Inc()
	}
}

// rerouted counts one connection moved onto a new route.
func (t *Telemetry) rerouted() {
	if t == nil {
		return
	}
	t.reroutes.Inc()
}

// reconfigEvent counts one reconfiguration trigger.
func (t *Telemetry) reconfigEvent() {
	if t == nil {
		return
	}
	t.reconfigs.Inc()
}
