package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("load", "current load")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
	// Same name returns the same instrument.
	if r.Counter("requests_total", "").Value() != 5 {
		t.Fatal("re-registration lost state")
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative add")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind clash")
		}
	}()
	r.Gauge("x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid name")
		}
	}()
	NewRegistry().Counter("9bad name", "")
}

func TestHistogramObserveAndBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g", h.Sum())
	}
	bks := h.Buckets()
	// Cumulative: ≤1 → 2 (0.5 and 1 via le semantics), ≤10 → 3, ≤100 → 4, +Inf → 5.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if bks[i].Count != w {
			t.Fatalf("bucket %d = %d, want %d", i, bks[i].Count, w)
		}
	}
	if !math.IsInf(bks[3].LE, 1) {
		t.Fatal("last bucket not +Inf")
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %g", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %g, want +Inf", q)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 10, 3)
	if b[0] != 1e-6 {
		t.Fatalf("first = %g", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last = %g, want ≥ 10", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("not increasing")
		}
	}
	// 3 per decade over 7 decades ≈ 22 bounds.
	if len(b) < 20 || len(b) > 24 {
		t.Fatalf("len = %d", len(b))
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase_seconds", "phase time")
	start := tm.Start()
	time.Sleep(time.Millisecond)
	tm.Stop(start)
	if tm.Hist().Count() != 1 {
		t.Fatal("no observation")
	}
	if tm.Hist().Sum() <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", nil)
	tm := r.Timer("d", "")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tm.Stop(tm.Start())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if h.Buckets() != nil || h.Quantile(0.5) != 0 || tm.Hist() != nil {
		t.Fatal("nil reads not zero")
	}
	if !tm.Start().IsZero() {
		t.Fatal("nil timer read the clock")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil registry wrote output")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Concurrent registration of the same names plus updates.
			c := r.Counter("ops_total", "")
			g := r.Gauge("level", "")
			h := r.Histogram("size", "", SizeBuckets())
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 7))
			}
		}()
	}
	wg.Wait()
	if n := r.Counter("ops_total", "").Value(); n != workers*per {
		t.Fatalf("counter = %d, want %d", n, workers*per)
	}
	if v := r.Gauge("level", "").Value(); v != workers*per {
		t.Fatalf("gauge = %g", v)
	}
	if n := r.Histogram("size", "", nil).Count(); n != workers*per {
		t.Fatalf("histogram count = %d", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "total requests").Add(3)
	r.Gauge("rho", "network load").Set(0.25)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP reqs_total total requests",
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# TYPE rho gauge",
		"rho 0.25",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 2.05",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	h := r.Histogram("b_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(math.Inf(1)) // non-finite sum must not break encoding
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snaps []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d metrics", len(snaps))
	}
	if snaps[0]["name"] != "a_total" || snaps[0]["value"].(float64) != 1 {
		t.Fatalf("counter snapshot = %v", snaps[0])
	}
	if snaps[1]["count"].(float64) != 2 {
		t.Fatalf("histogram snapshot = %v", snaps[1])
	}
	if _, ok := snaps[1]["sum"]; ok {
		t.Fatal("infinite sum should be omitted")
	}
}

func TestWriteFileBySuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	dir := t.TempDir()

	prom := filepath.Join(dir, "m.prom")
	if err := r.WriteFile(prom); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(prom)
	if !strings.Contains(string(b), "x_total 1") {
		t.Fatalf("prom output: %s", b)
	}

	js := filepath.Join(dir, "m.json")
	if err := r.WriteFile(js); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(js)
	var v []map[string]any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("json output invalid: %v", err)
	}
}
