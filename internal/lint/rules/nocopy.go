package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// NoCopy is the copylocks-style check for the engine's stateful workspace
// types. A graph.Workspace owns generation-stamped arrays and an indexed
// heap; disjoint.Workspace and core.Router build on it; auxgraph.Skeleton
// caches by identity against network version counters. Copying any of them
// forks that state: the copy and the original invalidate independently and
// one of them silently computes on stale scratch memory.
var NoCopy = &lint.Analyzer{
	Name: "nocopy",
	Doc:  "stateful workspace types (graph.Workspace, disjoint.Workspace, auxgraph.Skeleton, core.Router) must not be copied",
	Run:  runNoCopy,
}

// ncRegistered lists the protected types as (package path suffix, type name).
var ncRegistered = [][2]string{
	{"graph", "Workspace"},
	{"disjoint", "Workspace"},
	{"auxgraph", "Skeleton"},
	{"core", "Router"},
}

// ncContains reports the registered type t is or contains by value, or ""
// when none. Pointers, slices, maps and channels stop the descent: sharing
// through them is exactly the intended use.
func ncContains(t types.Type) string {
	return ncContainsRec(t, map[types.Type]bool{})
}

func ncContainsRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		for _, reg := range ncRegistered {
			if obj.Name() == reg[1] && lint.PkgPathIs(obj.Pkg(), reg[0]) {
				return reg[0] + "." + reg[1]
			}
		}
		return ncContainsRec(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hit := ncContainsRec(u.Field(i).Type(), seen); hit != "" {
				return hit
			}
		}
	case *types.Array:
		return ncContainsRec(u.Elem(), seen)
	}
	return ""
}

// ncCopySource reports whether e reads an existing value (the copyable
// cases); fresh composite literals and calls are allowed.
func ncCopySource(e ast.Expr) bool {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func runNoCopy(p *lint.Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				if s.Recv != nil {
					for _, field := range s.Recv.List {
						ncCheckFieldType(p, field, "method %s uses a by-value receiver of %s; use a pointer receiver", s.Name.Name)
					}
				}
				ncCheckSignature(p, s.Type)
			case *ast.FuncLit:
				ncCheckSignature(p, s.Type)
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if isBlank(s.Lhs[i]) {
						continue // discarding via _ makes no usable copy
					}
					ncCheckCopyExpr(p, rhs, "assignment copies %s; copy the pointer instead")
				}
			case *ast.ValueSpec:
				for i, v := range s.Values {
					if i < len(s.Names) && s.Names[i].Name == "_" {
						continue
					}
					ncCheckCopyExpr(p, v, "declaration copies %s; copy the pointer instead")
				}
			case *ast.RangeStmt:
				if s.Value != nil {
					if hit := ncContains(p.TypeOf(s.Value)); hit != "" {
						p.Reportf(s.Value.Pos(), "range copies %s per element; range over indices or pointers", hit)
					}
				}
			case *ast.CallExpr:
				for _, arg := range s.Args {
					ncCheckCopyExpr(p, arg, "call passes %s by value; pass a pointer")
				}
			case *ast.CompositeLit:
				for _, elt := range s.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					ncCheckCopyExpr(p, elt, "composite literal copies %s; store a pointer")
				}
			}
			return true
		})
	}
}

// ncCheckSignature flags by-value parameters and results of registered types.
func ncCheckSignature(p *lint.Pass, ft *ast.FuncType) {
	for _, list := range []*ast.FieldList{ft.Params, ft.Results} {
		if list == nil {
			continue
		}
		for _, field := range list.List {
			ncCheckFieldType(p, field, "signature passes %s by value; use a pointer", "")
		}
	}
}

func ncCheckFieldType(p *lint.Pass, field *ast.Field, format, name string) {
	t := p.TypeOf(field.Type)
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	hit := ncContains(t)
	if hit == "" {
		return
	}
	if name != "" {
		p.Reportf(field.Type.Pos(), format, name, hit)
	} else {
		p.Reportf(field.Type.Pos(), format, hit)
	}
}

func ncCheckCopyExpr(p *lint.Pass, e ast.Expr, format string) {
	if !ncCopySource(e) {
		return
	}
	t := p.TypeOf(e)
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if hit := ncContains(t); hit != "" {
		p.Reportf(e.Pos(), format, hit)
	}
}
