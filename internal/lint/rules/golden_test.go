package rules_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/rules"
)

var update = flag.Bool("update", false, "rewrite the golden expected.txt files")

// fixtures maps each rule to its analyzer and the fixture packages under
// testdata/<rule>, listed dependencies-first so lint.Check can resolve the
// fixture-internal imports.
var fixtures = []struct {
	rule     string
	analyzer *lint.Analyzer
	subdirs  []string
}{
	{"versionbump", rules.VersionBump, []string{"wdm"}},
	{"freshrouter", rules.FreshRouter, []string{"core", "app", "netsim"}},
	{"nocopy", rules.NoCopy, []string{"graph", "app"}},
	{"mapdet", rules.MapDet, []string{"core", "other"}},
	{"errcheck", rules.ErrCheckLite, []string{"trace", "obs", "timeseries", "http", "serve", "pprof", "app"}},
	{"hotalloc", rules.HotAlloc, []string{"graph", "app"}},
	{"snapmut", rules.SnapMut, []string{"wdm", "serve", "app"}},
	{"atomicfield", rules.AtomicField, []string{"core", "other"}},
}

// loadFixture typechecks the fixture packages for one rule. Import paths are
// synthesized as fix/<rule>/<sub>; the path-suffix matching in the analyzers
// makes them behave like the real packages they stand in for.
func loadFixture(t *testing.T, rule string, subdirs []string) ([]*lint.Package, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", rule))
	if err != nil {
		t.Fatal(err)
	}
	var specs []lint.PackageSpec
	for _, sub := range subdirs {
		dir := filepath.Join(root, sub)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		specs = append(specs, lint.PackageSpec{
			ImportPath: "fix/" + rule + "/" + sub,
			Dir:        dir,
			Files:      files,
			Analyze:    true,
		})
	}
	pkgs, err := lint.Check(specs)
	if err != nil {
		t.Fatalf("typechecking fixtures: %v", err)
	}
	return pkgs, root
}

// render formats surviving diagnostics one per line, with file paths relative
// to the fixture root so goldens are machine-independent.
func render(diags []lint.Diagnostic, root string) string {
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Rule, d.Message)
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.rule, func(t *testing.T) {
			pkgs, root := loadFixture(t, fx.rule, fx.subdirs)
			got := render(lint.Run(pkgs, []*lint.Analyzer{fx.analyzer}), root)
			golden := filepath.Join(root, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
