// Package core is a fixture standing in for the real routing package: the
// package-level functions are fresh-router wrappers, the Router methods are
// the reusable path.
package core

// Router is the reusable engine.
type Router struct{ calls int }

// NewRouter returns a fresh engine.
func NewRouter() *Router { return &Router{} }

// ApproxMinCost is a fresh-router wrapper.
func ApproxMinCost(s, t int) (int, bool) { return NewRouter().ApproxMinCost(s, t) }

// MinLoad is a fresh-router wrapper.
func MinLoad(s, t int) (int, bool) { return NewRouter().MinLoad(s, t) }

// ApproxMinCost is the warm path.
func (r *Router) ApproxMinCost(s, t int) (int, bool) {
	r.calls++
	return s + t, true
}

// MinLoad is the warm path.
func (r *Router) MinLoad(s, t int) (int, bool) {
	r.calls++
	return s + t, true
}
