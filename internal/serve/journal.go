package serve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/check"
	"repro/internal/wdm"
)

// JournalEntry is one committed decision in the daemon's serialization
// order. The sequence of entries is a serial history: replaying it op by op
// on a copy of the initial network must reproduce every decision, which is
// how a failing concurrent schedule becomes a deterministic regression.
type JournalEntry struct {
	Seq      uint64   `json:"seq"`
	Epoch    uint64   `json:"epoch"`
	Op       string   `json:"op"` // provision | teardown | reroute
	ID       int64    `json:"id"`
	Src      int      `json:"src"`
	Dst      int      `json:"dst"`
	Accepted bool     `json:"accepted"`
	Reason   string   `json:"reason,omitempty"`
	Cost     float64  `json:"cost,omitempty"`
	Retries  int      `json:"retries,omitempty"`
	Primary  []HopOut `json:"primary,omitempty"`
	Backup   []HopOut `json:"backup,omitempty"`
}

// journal is the bounded commit-order log. Only the committer appends, so
// the mutex serializes appenders against snapshot() readers only.
type journal struct {
	mu        sync.Mutex
	cap       int
	seq       uint64
	entries   []JournalEntry
	truncated bool
}

// record appends one committed decision (committer goroutine only; no-op
// when the journal is disabled).
func (j *journal) record(o *op, cr commitResult) {
	if j.cap <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	if len(j.entries) >= j.cap {
		j.truncated = true
		return
	}
	var kind string
	switch o.kind {
	case opProvision:
		kind = "provision"
	case opTeardown:
		kind = "teardown"
	case opReroute:
		kind = "reroute"
	default:
		return
	}
	ent := JournalEntry{
		Seq:      j.seq,
		Epoch:    cr.epoch,
		Op:       kind,
		ID:       o.id,
		Src:      o.s,
		Dst:      o.d,
		Accepted: cr.ok,
		Reason:   cr.reason,
		Retries:  o.retries,
	}
	switch o.kind {
	case opProvision, opReroute:
		if cr.ok || cr.reason == ReasonConflict {
			// Keep the attempted paths for conflicts too: Replay asserts the
			// losing reservation really was infeasible in commit order.
			ent.Primary = hopsJSON(o.primary)
			ent.Backup = hopsJSON(o.backup)
			ent.Cost = o.cost
		}
	case opTeardown:
		ent.Primary = hopsJSON(o.oldPrimary)
		ent.Backup = hopsJSON(o.oldBackup)
	}
	j.entries = append(j.entries, ent)
}

// snapshot copies the recorded entries (safe from any goroutine).
func (j *journal) snapshot() ([]JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalEntry(nil), j.entries...), j.truncated
}

func hopsFromJSON(hs []HopOut) []wdm.Hop {
	if len(hs) == 0 {
		return nil
	}
	hops := make([]wdm.Hop, len(hs))
	for i, h := range hs {
		hops[i] = wdm.Hop{Link: h.Link, Wavelength: h.Lambda}
	}
	return hops
}

// Replay re-executes a journal serially on a fresh copy of the initial
// network and verifies that every recorded decision is reproducible in
// commit order: accepted reservations must succeed with the recorded cost
// (bit-checked against the check oracle's Eq. 1 recomputation), conflicts
// must genuinely fail to reserve, teardowns must release exactly the
// recorded paths. It returns the final network so callers can compare it
// against the engine's last snapshot.
//
// This is the linearizability-style argument made executable: if the
// concurrent engine's observable decisions match a serial execution of its
// own commit order, the schedule was linearizable with the commit point as
// the linearization point.
func Replay(initial *wdm.Network, entries []JournalEntry) (*wdm.Network, error) {
	net := initial.Clone()
	live := make(map[int64][2][]wdm.Hop)
	for _, ent := range entries {
		switch ent.Op {
		case "provision":
			switch {
			case ent.Accepted:
				p := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Primary)}
				b := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Backup)}
				if err := net.Reserve(p); err != nil {
					return nil, fmt.Errorf("seq %d: accepted primary does not replay: %w", ent.Seq, err)
				}
				if err := net.Reserve(b); err != nil {
					return nil, fmt.Errorf("seq %d: accepted backup does not replay: %w", ent.Seq, err)
				}
				if got := check.PathCost(net, p) + check.PathCost(net, b); math.Abs(got-ent.Cost) > 1e-6*(1+math.Abs(ent.Cost)) {
					return nil, fmt.Errorf("seq %d: replayed cost %g, journal says %g", ent.Seq, got, ent.Cost)
				}
				live[ent.ID] = [2][]wdm.Hop{p.Hops, b.Hops}
			case ent.Reason == ReasonConflict:
				if err := reserveMustFail(net, hopsFromJSON(ent.Primary), hopsFromJSON(ent.Backup)); err != nil {
					return nil, fmt.Errorf("seq %d (provision conflict): %w", ent.Seq, err)
				}
			}
		case "teardown":
			if !ent.Accepted {
				continue
			}
			p := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Primary)}
			b := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Backup)}
			if err := net.ReleasePath(p); err != nil {
				return nil, fmt.Errorf("seq %d: teardown primary does not replay: %w", ent.Seq, err)
			}
			if err := net.ReleasePath(b); err != nil {
				return nil, fmt.Errorf("seq %d: teardown backup does not replay: %w", ent.Seq, err)
			}
			delete(live, ent.ID)
		case "reroute":
			old, isLive := live[ent.ID]
			switch {
			case ent.Accepted:
				if !isLive {
					return nil, fmt.Errorf("seq %d: reroute of connection %d not live in replay", ent.Seq, ent.ID)
				}
				if err := net.ReleasePath(&wdm.Semilightpath{Hops: old[0]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute release(primary): %w", ent.Seq, err)
				}
				if err := net.ReleasePath(&wdm.Semilightpath{Hops: old[1]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute release(backup): %w", ent.Seq, err)
				}
				p := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Primary)}
				b := &wdm.Semilightpath{Hops: hopsFromJSON(ent.Backup)}
				if err := net.Reserve(p); err != nil {
					return nil, fmt.Errorf("seq %d: rerouted primary does not replay: %w", ent.Seq, err)
				}
				if err := net.Reserve(b); err != nil {
					return nil, fmt.Errorf("seq %d: rerouted backup does not replay: %w", ent.Seq, err)
				}
				live[ent.ID] = [2][]wdm.Hop{p.Hops, b.Hops}
			case ent.Reason == ReasonConflict && isLive:
				// In commit order the old paths were released, the new pair
				// failed to reserve, and the old paths were restored: net-zero
				// on the network, but the new pair must fail with the old
				// channels free.
				if err := net.ReleasePath(&wdm.Semilightpath{Hops: old[0]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute-conflict release: %w", ent.Seq, err)
				}
				if err := net.ReleasePath(&wdm.Semilightpath{Hops: old[1]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute-conflict release: %w", ent.Seq, err)
				}
				if err := reserveMustFail(net, hopsFromJSON(ent.Primary), hopsFromJSON(ent.Backup)); err != nil {
					return nil, fmt.Errorf("seq %d (reroute conflict): %w", ent.Seq, err)
				}
				if err := net.Reserve(&wdm.Semilightpath{Hops: old[0]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute-conflict restore: %w", ent.Seq, err)
				}
				if err := net.Reserve(&wdm.Semilightpath{Hops: old[1]}); err != nil {
					return nil, fmt.Errorf("seq %d: reroute-conflict restore: %w", ent.Seq, err)
				}
			}
		default:
			return nil, fmt.Errorf("seq %d: unknown op %q", ent.Seq, ent.Op)
		}
	}
	return net, nil
}

// reserveMustFail asserts that the pair cannot be reserved on net: the
// primary fails outright, or succeeds and the backup fails (and is then
// rolled back). A pair that reserves cleanly means the journal recorded a
// conflict that was not real — a serializability violation.
func reserveMustFail(net *wdm.Network, primary, backup []wdm.Hop) error {
	p := &wdm.Semilightpath{Hops: primary}
	if err := net.Reserve(p); err != nil {
		return nil
	}
	b := &wdm.Semilightpath{Hops: backup}
	if err := net.Reserve(b); err != nil {
		if rerr := net.ReleasePath(p); rerr != nil {
			return fmt.Errorf("rollback after expected conflict: %w", rerr)
		}
		return nil
	}
	return fmt.Errorf("journal recorded a conflict but the pair reserves cleanly in commit order")
}
