// Package obs is a fixture flight recorder whose Dump and DumpFile surface
// encoding and write errors; dropping them loses the retained traces silently.
package obs

import "io"

// Flight retains recent traces.
type Flight struct{ n int }

// Add retains one trace.
func (f *Flight) Add(v int) { f.n++ }

// Dump writes the retained traces as JSONL.
func (f *Flight) Dump(w io.Writer) error {
	_, err := w.Write([]byte("{}\n"))
	return err
}

// DumpFile writes the retained traces to path.
func (f *Flight) DumpFile(path string) error { return nil }
