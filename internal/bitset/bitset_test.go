package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Cap() != 130 {
		t.Fatalf("Cap() = %d, want 130", s.Cap())
	}
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
	if s.Min() != -1 {
		t.Fatalf("Min() = %d, want -1", s.Min())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		s.Add(i)
	}
	for _, i := range idx {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != len(idx) {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(idx))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if s.Count() != len(idx)-1 {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(idx)-1)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if s.Count() != len(idx)-1 {
		t.Fatal("double Remove changed count")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Add":      func() { s.Add(10) },
		"AddNeg":   func() { s.Add(-1) },
		"Remove":   func() { s.Remove(10) },
		"Contains": func() { s.Contains(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := NewFull(n)
		if s.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, s.Count())
		}
	}
}

func TestFromSlice(t *testing.T) {
	s := FromSlice(16, []int{3, 1, 4, 1, 5, 9, 2, 6})
	want := []int{1, 2, 3, 4, 5, 6, 9}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice() = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(70, []int{0, 69})
	c := s.Clone()
	c.Add(30)
	if s.Contains(30) {
		t.Fatal("Clone is not independent")
	}
	if !c.Contains(0) || !c.Contains(69) {
		t.Fatal("Clone lost elements")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromSlice(70, []int{1, 2, 3})
	d := New(70)
	d.CopyFrom(s)
	if !d.Equal(s) {
		t.Fatal("CopyFrom did not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with capacity mismatch should panic")
		}
	}()
	d.CopyFrom(New(71))
}

func TestClearFill(t *testing.T) {
	s := FromSlice(100, []int{5, 50, 99})
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements")
	}
	s.Fill()
	if s.Count() != 100 {
		t.Fatalf("Fill Count = %d, want 100", s.Count())
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice(70, []int{1, 2, 3, 64})
	b := FromSlice(70, []int{2, 3, 4, 65})

	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}

	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 6 {
		t.Errorf("union Count = %d, want 6", u.Count())
	}

	i := a.Clone()
	i.IntersectWith(b)
	if !i.Equal(FromSlice(70, []int{2, 3})) {
		t.Errorf("intersection = %v", i)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if !d.Equal(FromSlice(70, []int{1, 64})) {
		t.Errorf("difference = %v", d)
	}

	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Error("intersection should be subset of both")
	}
	if a.SubsetOf(b) {
		t.Error("a should not be subset of b")
	}

	disjointA := FromSlice(70, []int{1})
	disjointB := FromSlice(70, []int{2})
	if disjointA.Intersects(disjointB) {
		t.Error("disjoint sets should not intersect")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(10, []int{1, 2})
	b := FromSlice(10, []int{1, 2})
	c := FromSlice(11, []int{1, 2})
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	if a.Equal(c) {
		t.Error("different capacities should be unequal")
	}
}

func TestMinNextAfter(t *testing.T) {
	s := FromSlice(200, []int{5, 64, 190})
	if s.Min() != 5 {
		t.Fatalf("Min = %d, want 5", s.Min())
	}
	order := []int{5, 64, 190}
	i := -1
	for _, want := range order {
		i = s.NextAfter(i)
		if i != want {
			t.Fatalf("NextAfter chain got %d, want %d", i, want)
		}
	}
	if next := s.NextAfter(i); next != -1 {
		t.Fatalf("NextAfter(last) = %d, want -1", next)
	}
	if next := s.NextAfter(300); next != -1 {
		t.Fatalf("NextAfter(beyond cap) = %d, want -1", next)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(10, []int{1, 3, 5, 7})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 3}).String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: Slice round-trips through FromSlice.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		const n = 256
		s := New(n)
		for _, r := range raw {
			s.Add(int(r))
		}
		back := FromSlice(n, s.Slice())
		return back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: |A ∪ B| + |A ∩ B| == |A| + |B| (inclusion–exclusion).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, r := range ra {
			a.Add(int(r))
		}
		for _, r := range rb {
			b.Add(int(r))
		}
		u := a.Clone()
		u.UnionWith(b)
		return u.Count()+a.IntersectCount(b) == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DifferenceWith(b) then IntersectCount(b) == 0.
func TestQuickDifferenceDisjoint(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, r := range ra {
			a.Add(int(r))
		}
		for _, r := range rb {
			b.Add(int(r))
		}
		d := a.Clone()
		d.DifferenceWith(b)
		return d.IntersectCount(b) == 0 && d.SubsetOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 150
	s := New(n)
	ref := map[int]bool{}
	for op := 0; op < 5000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			ref[i] = true
		case 1:
			s.Remove(i)
			delete(ref, i)
		case 2:
			if s.Contains(i) != ref[i] {
				t.Fatalf("op %d: Contains(%d) mismatch", op, i)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("final Count = %d, want %d", s.Count(), len(ref))
	}
	for i := range ref {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	a := NewFull(1024)
	c := NewFull(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectCount(c)
	}
}

func BenchmarkForEach(b *testing.B) {
	s := NewFull(1024)
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(i int) bool { sum += i; return true })
	}
	_ = sum
}
