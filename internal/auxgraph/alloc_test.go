//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerRun accounting).
package auxgraph

import "testing"

// TestIncrementalReweightZeroAllocs pins the incremental-reweight budget:
// once a shared skeleton is warm, re-weighting after a single-link
// availability change must allocate nothing — the journal limits the
// per-link weight refresh to the dirty link and the filter/terminal passes
// reuse the skeleton's buffers.
func TestIncrementalReweightZeroAllocs(t *testing.T) {
	net := fig1Net()
	sk := NewSharedSkeleton(net)
	for _, k := range []Kind{Cost, Load, LoadCost} {
		sk.ReweightAt(0, 2, Params{Kind: k, Threshold: 0.5})
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := net.Use(0, 0); err != nil {
			t.Fatal(err)
		}
		sk.ReweightAt(0, 2, Params{Kind: Cost})
		sk.ReweightAt(1, 3, Params{Kind: Cost})
		if err := net.Release(0, 0); err != nil {
			t.Fatal(err)
		}
		sk.ReweightAt(0, 2, Params{Kind: LoadCost, Threshold: 0.5})
	}); n != 0 {
		t.Fatalf("warm incremental reweight allocates %v per op, want 0", n)
	}
}

// TestReweightUnchangedStateZeroAllocs pins the fully-clean fast path: with
// no state change at all between calls, a reweight (even switching the
// active terminal pair) must not allocate.
func TestReweightUnchangedStateZeroAllocs(t *testing.T) {
	net := fig1Net()
	sk := NewSharedSkeleton(net)
	sk.ReweightAt(0, 2, Params{Kind: Cost})
	sk.ReweightAt(1, 3, Params{Kind: Cost})
	if n := testing.AllocsPerRun(100, func() {
		sk.ReweightAt(0, 2, Params{Kind: Cost})
		sk.ReweightAt(1, 3, Params{Kind: Cost})
	}); n != 0 {
		t.Fatalf("clean-state reweight allocates %v per op, want 0", n)
	}
}
