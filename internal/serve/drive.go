package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// DriveConfig parameterises Drive, the HTTP client-side load generator
// behind `wdmd -drive` (the CI smoke drives a live daemon through its real
// HTTP surface, exercising the JSON encode/decode path end to end).
type DriveConfig struct {
	// Requests is the total operation count across all clients.
	Requests int
	// Clients is the number of concurrent HTTP clients (16 if 0).
	Clients int
	// Seed makes the workload deterministic per client (Seed + client).
	Seed int64
	// MaxLive caps each client's live connections (32 if 0).
	MaxLive int
	// Nodes is the served network's node count (for endpoint draws).
	Nodes int
}

func (c *DriveConfig) clients() int {
	if c.Clients > 0 {
		return c.Clients
	}
	return 16
}

func (c *DriveConfig) maxLive() int {
	if c.MaxLive > 0 {
		return c.MaxLive
	}
	return 32
}

// DriveReport aggregates one HTTP drive run.
type DriveReport struct {
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	Provisions int64   `json:"provisions"`
	Accepted   int64   `json:"accepted"`
	Blocked    int64   `json:"blocked"`
	Teardowns  int64   `json:"teardowns"`
	Errors     int64   `json:"errors"`
	Blocking   float64 `json:"blocking_probability"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	Elapsed    float64 `json:"elapsed_seconds"`
}

func (r DriveReport) String() string {
	return fmt.Sprintf(
		"drive: %d requests, %d clients: %d provisions (%d accepted, %d blocked, blocking %.4f), "+
			"%d teardowns, %d transport errors, p50 %.1fµs p99 %.1fµs over %.2fs",
		r.Requests, r.Clients, r.Provisions, r.Accepted, r.Blocked, r.Blocking,
		r.Teardowns, r.Errors, r.P50Micros, r.P99Micros, r.Elapsed)
}

// post sends one JSON request and decodes the daemon's response.
func post(hc *http.Client, url string, req Request) (Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	httpResp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return Response{}, err
	}
	defer func() { _ = httpResp.Body.Close() }()
	if httpResp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("%s: HTTP %d", url, httpResp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// Drive hammers a live daemon at baseURL (e.g. "http://localhost:9101")
// over HTTP with cfg.Clients concurrent seeded clients, then tears down
// every connection it still owns. It returns an error on any transport
// failure or non-200 — the smoke test's "zero blocked-forever requests"
// gate is simply that every request got a well-formed answer.
func Drive(baseURL string, cfg DriveConfig) (DriveReport, error) {
	var (
		next    atomic.Int64
		lat     = metrics.NewHistogram(nil)
		prov    atomic.Int64
		acc     atomic.Int64
		blocked atomic.Int64
		tears   atomic.Int64
		errs    atomic.Int64
	)
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		errs.Add(1)
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients(); c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 30 * time.Second}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(client)))
			var live []int64
			var k int64
			for {
				n := next.Add(1)
				if n > int64(cfg.Requests) {
					break
				}
				t0 := time.Now()
				if len(live) >= cfg.maxLive() || (len(live) > 0 && rng.Float64() < 0.45) {
					id := live[0]
					live = live[1:]
					if _, err := post(hc, baseURL+"/teardown", Request{ID: id}); err != nil {
						fail(err)
						return
					}
					tears.Add(1)
				} else {
					s := rng.Intn(cfg.Nodes)
					d := rng.Intn(cfg.Nodes - 1)
					if d >= s {
						d++
					}
					k++
					id := int64(client)<<32 | k
					resp, err := post(hc, baseURL+"/provision", Request{ID: id, Src: s, Dst: d})
					if err != nil {
						fail(err)
						return
					}
					prov.Add(1)
					if resp.Accepted {
						acc.Add(1)
						live = append(live, id)
					} else {
						blocked.Add(1)
					}
				}
				lat.Observe(time.Since(t0).Seconds())
			}
			for _, id := range live {
				if _, err := post(hc, baseURL+"/teardown", Request{ID: id}); err != nil {
					fail(err)
					return
				}
				tears.Add(1)
			}
		}(c)
	}
	wg.Wait()

	rep := DriveReport{
		Requests:   cfg.Requests,
		Clients:    cfg.clients(),
		Provisions: prov.Load(),
		Accepted:   acc.Load(),
		Blocked:    blocked.Load(),
		Teardowns:  tears.Load(),
		Errors:     errs.Load(),
		P50Micros:  lat.Quantile(0.50) * 1e6,
		P99Micros:  lat.Quantile(0.99) * 1e6,
		Elapsed:    time.Since(start).Seconds(),
	}
	if rep.Provisions > 0 {
		rep.Blocking = float64(rep.Blocked) / float64(rep.Provisions)
	}
	if p := firstErr.Load(); p != nil {
		return rep, *p
	}
	return rep, nil
}
