package callgraph

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden expected.txt")

// loadDisp typechecks the dispatch fixture package and builds its graph.
func loadDisp(t *testing.T) *Graph {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "disp"))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	pkgs, err := lint.Check([]lint.PackageSpec{{
		ImportPath: "fix/callgraph/disp",
		Dir:        dir,
		Files:      files,
		Analyze:    true,
	}})
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return Build(pkgs)
}

// label renders a node as Func or Recv.Method.
func label(n *Node) string {
	sig := n.Func.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + n.Func.Name()
		}
	}
	return n.Func.Name()
}

// TestDispatchGolden pins how every call site in the fixture resolves: one
// line per edge, callers in source order, edges in body order.
func TestDispatchGolden(t *testing.T) {
	g := loadDisp(t)
	var b strings.Builder
	for _, n := range g.Order {
		for _, e := range n.Out {
			fmt.Fprintf(&b, "%s -> %s [%s]\n", label(e.Caller), label(e.Callee), e.Kind)
		}
	}
	got := b.String()
	golden := filepath.Join("testdata", "disp", "expected.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("edges mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEdgeCompatibility is the soundness property of the resolver: every
// edge's callee must be type-compatible with its call site — a function the
// site could not actually invoke must never appear as a callee.
func TestEdgeCompatibility(t *testing.T) {
	g := loadDisp(t)
	edges := 0
	for _, n := range g.Order {
		for _, e := range n.Out {
			edges++
			calleeSig := e.Callee.Func.Type().(*types.Signature)
			switch e.Kind {
			case Interface:
				// The callee must implement the interface method it was
				// resolved from, with a matching receiver-free signature.
				want := e.Iface.Type().(*types.Signature)
				if !compatibleSignatures(want, calleeSig) {
					t.Errorf("interface edge %s -> %s: signature %s incompatible with %s",
						label(e.Caller), label(e.Callee), calleeSig, want)
				}
			case FuncValue:
				want, ok := e.Caller.Pkg.Info.TypeOf(e.Site.Fun).Underlying().(*types.Signature)
				if !ok {
					t.Errorf("funcvalue edge %s -> %s: site is not function-typed",
						label(e.Caller), label(e.Callee))
					continue
				}
				if !compatibleSignatures(want, calleeSig) {
					t.Errorf("funcvalue edge %s -> %s: signature %s incompatible with site type %s",
						label(e.Caller), label(e.Callee), calleeSig, want)
				}
			case Static:
				// The site's function expression must denote exactly the
				// callee (modulo generic instantiation).
				want := e.Caller.Pkg.Info.TypeOf(e.Site.Fun)
				if want == nil {
					t.Errorf("static edge %s -> %s: untyped call site",
						label(e.Caller), label(e.Callee))
					continue
				}
				wantSig, ok := want.Underlying().(*types.Signature)
				if !ok {
					t.Errorf("static edge %s -> %s: site type %s is not a signature",
						label(e.Caller), label(e.Callee), want)
					continue
				}
				if !compatibleSignatures(wantSig, calleeSig) {
					t.Errorf("static edge %s -> %s: signature %s incompatible with site type %s",
						label(e.Caller), label(e.Callee), calleeSig, wantSig)
				}
			}
		}
	}
	if edges == 0 {
		t.Fatal("fixture produced no edges")
	}
	// Negative dispatch properties the golden alone cannot express crisply:
	// an indirect call never reaches a function whose address is not taken.
	for _, n := range g.Order {
		if n.Func.Name() != "Never" {
			continue
		}
		if len(n.In) != 0 {
			t.Errorf("Never is not address-taken but has %d in-edges", len(n.In))
		}
	}
}
