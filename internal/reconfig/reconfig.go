// Package reconfig implements the network reconfiguration the paper's §4
// motivates avoiding: given a loaded network and its live connections,
// re-route connections to minimise the network load ρ = max_e U(e)/N(e)
// (the objective of Narula-Tam & Modiano [18] and Acampora [1], cited in
// §1). During a real reconfiguration the network is frozen, so the optimizer
// also reports how many connections had to move — the disruption §4's
// load-aware routing reduces the need for.
//
// The optimizer is an iterated local search: connections riding the most
// loaded links are torn down and re-routed with the load-minimising router;
// a round is kept only if ρ (with the number of maximally-loaded links as
// tie-break) strictly improves.
package reconfig

import (
	"sort"

	"repro/internal/core"
	"repro/internal/wdm"
)

// Connection is one live connection the optimizer may move.
type Connection struct {
	ID      int
	Src     int
	Dst     int
	Primary *wdm.Semilightpath
	Backup  *wdm.Semilightpath // may be nil (unprotected)
}

// Result reports a reconfiguration run.
type Result struct {
	// LoadBefore and LoadAfter are ρ before and after.
	LoadBefore float64
	LoadAfter  float64
	// Moves counts connections that ended on different routes.
	Moves int
	// Rounds counts improvement rounds executed.
	Rounds int
}

// state captures ρ plus the count of links at ρ (lexicographic objective).
func state(net *wdm.Network) (float64, int) {
	rho := net.NetworkLoad()
	at := 0
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.N() == 0 {
			continue
		}
		if l.Load() >= rho-1e-12 {
			at++
		}
	}
	return rho, at
}

// Optimize re-routes connections in place (their Primary/Backup fields are
// updated and the network's reservations adjusted) until the network load
// stops improving or maxRounds is exhausted (0 = 10). All connections must
// currently be reserved on the network.
func Optimize(net *wdm.Network, conns []*Connection, maxRounds int, opts *core.Options) *Result {
	if maxRounds <= 0 {
		maxRounds = 10
	}
	res := &Result{}
	res.LoadBefore = net.NetworkLoad()
	moved := map[int]bool{}
	router := core.NewRouter(opts)

	for round := 0; round < maxRounds; round++ {
		rho, ties := state(net)
		if rho == 0 {
			break
		}
		// Connections on maximally loaded links, most loaded first.
		type cand struct {
			c    *Connection
			load float64
		}
		var cands []cand
		for _, c := range conns {
			maxL := 0.0
			paths := []*wdm.Semilightpath{c.Primary}
			if c.Backup != nil {
				paths = append(paths, c.Backup)
			}
			for _, p := range paths {
				for _, h := range p.Hops {
					if l := net.Link(h.Link).Load(); l > maxL {
						maxL = l
					}
				}
			}
			if maxL >= rho-1e-12 {
				cands = append(cands, cand{c: c, load: maxL})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].load != cands[j].load {
				return cands[i].load > cands[j].load
			}
			return cands[i].c.ID < cands[j].c.ID
		})
		improvedRound := false
		for _, cd := range cands {
			c := cd.c
			oldP, oldB := c.Primary, c.Backup
			release(net, oldP, oldB)
			r, ok := router.MinLoad(net, c.Src, c.Dst)
			if ok && core.Establish(net, r) == nil {
				nrho, nties := state(net)
				if nrho < rho-1e-12 || (nrho <= rho+1e-12 && nties < ties) {
					c.Primary, c.Backup = r.Primary, r.Backup
					if !samePaths(oldP, r.Primary) || !samePaths(oldB, r.Backup) {
						moved[c.ID] = true
					}
					rho, ties = nrho, nties
					improvedRound = true
					continue
				}
				// No improvement: undo.
				if err := core.Teardown(net, r); err != nil {
					panic("reconfig: undo teardown failed: " + err.Error())
				}
			}
			reserve(net, oldP, oldB)
		}
		res.Rounds++
		if !improvedRound {
			break
		}
	}
	res.LoadAfter = net.NetworkLoad()
	res.Moves = len(moved)
	return res
}

func release(net *wdm.Network, p, b *wdm.Semilightpath) {
	if err := net.ReleasePath(p); err != nil {
		panic("reconfig: release failed: " + err.Error())
	}
	if b != nil {
		if err := net.ReleasePath(b); err != nil {
			panic("reconfig: release failed: " + err.Error())
		}
	}
}

func reserve(net *wdm.Network, p, b *wdm.Semilightpath) {
	if err := net.Reserve(p); err != nil {
		panic("reconfig: re-reserve failed: " + err.Error())
	}
	if b != nil {
		if err := net.Reserve(b); err != nil {
			panic("reconfig: re-reserve failed: " + err.Error())
		}
	}
}

func samePaths(a, b *wdm.Semilightpath) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}
