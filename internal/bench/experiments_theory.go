package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/auxgraph"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/wdm"
)

// F1 rebuilds the Figure 1 construction on a small residual network and
// tabulates the auxiliary graph inventory against the §3.3.1 formulas:
// 2m edge-nodes (+ s′, t″), one link edge per residual link, conversion
// edges bounded by Σ_v |E_in(v)|·|E_out(v)|.
func F1(Options) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Auxiliary-graph construction inventory (Figure 1)",
		Columns: []string{"graph", "quantity", "formula", "predicted", "built"},
		Notes:   "reproduces the residual→auxiliary construction of Fig. 1 on a 4-node example and on NSFNET",
	}
	cases := []struct {
		name string
		net  *wdm.Network
		s, d int
	}{
		{"fig1-4node", fig1Net(), 0, 2},
		{"nsfnet-14", topo.NSFNET(topo.Config{W: 4}), 0, 13},
	}
	for _, c := range cases {
		a := auxgraph.Build(c.net, c.s, c.d, auxgraph.Params{Kind: auxgraph.Cost})
		m := c.net.Links()
		convBound := 0
		for v := 0; v < c.net.Nodes(); v++ {
			convBound += len(c.net.In(v)) * len(c.net.Out(v))
		}
		linkEdges := 0
		for id := 0; id < a.G.M(); id++ {
			if a.G.Edge(id).Aux >= 0 {
				linkEdges++
			}
		}
		t.AddRow(c.name, "edge-nodes", "2m", fmt.Sprint(2*m), fmt.Sprint(a.G.N()-2))
		t.AddRow(c.name, "link edges", "m", fmt.Sprint(m), fmt.Sprint(linkEdges))
		t.AddRow(c.name, "conv edges", "≤ Σ|Ein||Eout|", fmt.Sprint(convBound),
			fmt.Sprint(a.G.M()-linkEdges-a.G.OutDegree(a.S)-a.G.InDegree(a.T)))
		t.AddRow(c.name, "s' fan-out", "|Eout(s)|", fmt.Sprint(len(c.net.Out(c.s))),
			fmt.Sprint(a.G.OutDegree(a.S)))
		t.AddRow(c.name, "t'' fan-in", "|Ein(t)|", fmt.Sprint(len(c.net.In(c.d))),
			fmt.Sprint(a.G.InDegree(a.T)))
	}
	return t
}

func fig1Net() *wdm.Network {
	g := wdm.NewNetwork(4, 2)
	g.AddUniformPair(0, 1, 1)
	g.AddUniformPair(1, 2, 1)
	g.AddUniformPair(0, 3, 1)
	g.AddUniformPair(3, 2, 1)
	g.AddUniformPair(1, 3, 1)
	return g
}

// randomInstance builds a random biconnected residual WDM network under the
// Theorem 2 assumptions (uniform per-link wavelength cost, full conversion
// with cost ≤ the cheapest link).
func randomInstance(rng *rand.Rand, n, w int, preloadP float64) *wdm.Network {
	g := wdm.NewNetwork(n, w)
	minCost := math.Inf(1)
	add := func(u, v int) {
		c := 1 + rng.Float64()*4
		if c < minCost {
			minCost = c
		}
		g.AddUniformLink(u, v, c)
	}
	for v := 0; v < n; v++ {
		add(v, (v+1)%n)
		add((v+1)%n, v)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	g.SetAllConverters(wdm.NewFullConverter(w, rng.Float64()*minCost))
	if preloadP > 0 {
		for id := 0; id < g.Links(); id++ {
			for lam := 0; lam < w; lam++ {
				if rng.Float64() < preloadP {
					g.Use(id, lam)
				}
			}
		}
	}
	return g
}

// E1 measures the approximation ratio of ApproxMinCost against the
// exhaustive exact optimum over random instances (Theorem 2: ratio ≤ 2
// under the stated assumptions).
func E1(o Options) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Approximation ratio vs exact optimum (Theorem 2)",
		Columns: []string{"n", "W", "instances", "feasible", "mean ratio", "p95 ratio", "max ratio", "≤2"},
		Notes:   "ratio = approx cost / exact cost; Theorem 2 predicts ≤ 2 under uniform costs + full conversion",
	}
	type cfg struct{ n, w int }
	cfgs := []cfg{{6, 2}, {8, 2}, {8, 3}, {10, 3}}
	if o.Quick {
		cfgs = []cfg{{6, 2}, {8, 2}}
	}
	seeds := o.seeds(120, 12)
	for _, c := range cfgs {
		type sample struct {
			ratio    float64
			feasible bool
		}
		samples := parallel.MapWithState(seeds, 0, newRouter, func(rt *core.Router, i int) sample {
			rng := rand.New(rand.NewSource(int64(1000*c.n + 10*c.w + i)))
			net := randomInstance(rng, c.n, c.w, 0)
			s, d := 0, c.n-1
			r, ok := rt.ApproxMinCost(net, s, d)
			sol, _, okE := exact.Exhaustive(net, s, d, 0)
			if !ok || !okE {
				return sample{}
			}
			return sample{ratio: r.Cost / sol.Cost, feasible: true}
		})
		var ratios []float64
		var str stats.Stream
		within := 0
		for _, s := range samples {
			if !s.feasible {
				continue
			}
			ratios = append(ratios, s.ratio)
			str.Add(s.ratio)
			if s.ratio <= 2+1e-9 {
				within++
			}
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.w), fmt.Sprint(seeds),
			fmt.Sprint(len(ratios)), fmtF(str.Mean()),
			fmtF(stats.Quantile(ratios, 0.95)), fmtF(str.Max()),
			fmtPct(float64(within)/float64(max(1, len(ratios)))))
	}
	return t
}

// E2 measures ApproxMinCost wall time against the Theorem 1 bound
// O(nd + nW² + m log n + nW log(nW)).
func E2(o Options) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Running-time scaling (Theorem 1)",
		Columns: []string{"n", "W", "m", "d", "µs/request", "µs/paper-term", "µs/impl-term"},
		Notes:   "paper term = nd + nW² + m·log2(n) + nW·log2(nW) (assumes O(1) conversion-edge weights); impl term adds the W²-per-conversion-edge averaging, Σ|Ein||Eout|·W²; a flat column matches the corresponding growth model",
	}
	type cfg struct{ n, w int }
	cfgs := []cfg{{25, 4}, {50, 4}, {100, 4}, {200, 4}, {50, 8}, {50, 16}, {50, 32}}
	if o.Quick {
		cfgs = []cfg{{25, 4}, {50, 4}, {50, 8}}
	}
	reps := o.seeds(40, 5)
	for _, c := range cfgs {
		net := topo.Waxman(c.n, 0.4, 0.4, 42, topo.Config{W: c.w})
		rt := core.NewRouter(nil)
		// Warm-up.
		rt.ApproxMinCost(net, 0, c.n/2)
		start := time.Now()
		calls := 0
		for r := 0; r < reps; r++ {
			s := r % c.n
			d := (r + c.n/2) % c.n
			if s == d {
				continue
			}
			rt.ApproxMinCost(net, s, d)
			calls++
		}
		elapsed := float64(time.Since(start).Microseconds()) / float64(max(1, calls))
		m := float64(net.Links())
		n := float64(c.n)
		w := float64(c.w)
		d := float64(net.MaxDegree())
		bound := n*d + n*w*w + m*math.Log2(n) + n*w*math.Log2(n*w)
		convPairs := 0.0
		for v := 0; v < c.n; v++ {
			convPairs += float64(len(net.In(v)) * len(net.Out(v)))
		}
		impl := bound + convPairs*w*w
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.w), fmt.Sprint(net.Links()),
			fmt.Sprint(net.MaxDegree()), fmtF(elapsed),
			fmt.Sprintf("%.3g", elapsed/bound*1000), fmt.Sprintf("%.3g", elapsed/impl*1000))
	}
	return t
}

// E3 measures the MinCog load ratio against the exact minimum-load oracle
// (Theorem 3: ratio < 3).
func E3(o Options) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Load ratio vs exact min load (Theorem 3)",
		Columns: []string{"n", "W", "preload", "feasible", "mean ratio", "max ratio", "<3"},
		Notes:   "ratio = achieved path load / oracle optimum; Theorem 3 bounds the threshold search by 3",
	}
	type cfg struct {
		n, w    int
		preload float64
	}
	cfgs := []cfg{{8, 4, 0.3}, {10, 4, 0.5}, {12, 8, 0.5}, {12, 8, 0.7}}
	if o.Quick {
		cfgs = []cfg{{8, 4, 0.3}, {10, 4, 0.5}}
	}
	seeds := o.seeds(150, 15)
	for _, c := range cfgs {
		type sample struct {
			ratio float64
			ok    bool
		}
		samples := parallel.MapWithState(seeds, 0, newRouter, func(rt *core.Router, i int) sample {
			rng := rand.New(rand.NewSource(int64(7000*c.n + i)))
			net := randomInstance(rng, c.n, c.w, c.preload)
			s, d := 0, c.n-1
			r, ok := rt.MinLoad(net, s, d)
			oracle, okO := rt.OptimalLoadOracle(net, s, d)
			if !ok || !okO || oracle == 0 {
				return sample{}
			}
			return sample{ratio: r.PathLoad / oracle, ok: true}
		})
		var str stats.Stream
		within := 0
		n := 0
		for _, s := range samples {
			if !s.ok {
				continue
			}
			n++
			str.Add(s.ratio)
			if s.ratio < 3 {
				within++
			}
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.w), fmtF(c.preload),
			fmt.Sprint(n), fmtF(str.Mean()), fmtF(str.Max()),
			fmtPct(float64(within)/float64(max(1, n))))
	}
	return t
}

// E6 measures the Lemma 2 refinement: the optimal wavelength assignment on
// the mapped routes versus the first-fit assignment and the auxiliary pair
// weight ω(P₁)+ω(P₂).
func E6(o Options) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 2 refinement improvement",
		Columns: []string{"n", "W", "feasible", "mean refined/naive", "mean refined/ω", "improved"},
		Notes:   "instances use heterogeneous per-wavelength costs so first-fit is suboptimal; Lemma 2 predicts refined ≤ naive",
	}
	type cfg struct{ n, w int }
	cfgs := []cfg{{8, 4}, {12, 8}, {16, 8}}
	if o.Quick {
		cfgs = cfgs[:1]
	}
	seeds := o.seeds(150, 15)
	for _, c := range cfgs {
		type sample struct {
			vsNaive, vsAux float64
			improved, ok   bool
		}
		samples := parallel.MapWithState(seeds, 0, newRouter, func(rt *core.Router, i int) sample {
			rng := rand.New(rand.NewSource(int64(31000 + i)))
			net := heterogeneousInstance(rng, c.n, c.w)
			s, d := 0, c.n-1
			r, ok := rt.ApproxMinCost(net, s, d)
			if !ok || math.IsInf(r.NaiveCost, 1) {
				return sample{}
			}
			return sample{
				vsNaive:  r.Cost / r.NaiveCost,
				vsAux:    r.Cost / r.AuxWeight,
				improved: r.Cost < r.NaiveCost-1e-9,
				ok:       true,
			}
		})
		var sN, sA stats.Stream
		improved, n := 0, 0
		for _, s := range samples {
			if !s.ok {
				continue
			}
			n++
			sN.Add(s.vsNaive)
			sA.Add(s.vsAux)
			if s.improved {
				improved++
			}
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.w), fmt.Sprint(n),
			fmtF(sN.Mean()), fmtF(sA.Mean()),
			fmtPct(float64(improved)/float64(max(1, n))))
	}
	return t
}

// heterogeneousInstance uses per-wavelength cost spread so wavelength
// assignment matters (violating assumption (ii) deliberately, as the Lemma 2
// machinery still applies and the gap becomes visible).
func heterogeneousInstance(rng *rand.Rand, n, w int) *wdm.Network {
	g := wdm.NewNetwork(n, w)
	add := func(u, v int) {
		lams := make([]wdm.Wavelength, w)
		costs := make([]float64, w)
		for lam := 0; lam < w; lam++ {
			lams[lam] = lam
			costs[lam] = 1 + rng.Float64()*6
		}
		g.AddLink(u, v, lams, costs)
	}
	for v := 0; v < n; v++ {
		add(v, (v+1)%n)
		add((v+1)%n, v)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	g.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return g
}

// E7 compares the Suurballe-based router against the naive two-step
// baseline: success rate (trap topologies) and cost when both succeed.
func E7(o Options) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Suurballe-based routing vs two-step baseline",
		Columns: []string{"topology", "requests", "approx ok", "two-step ok", "mean cost ratio (2step/approx)"},
		Notes:   "two-step = shortest semilightpath, delete links, route again; fails on trap instances",
	}
	seeds := o.seeds(200, 20)
	type caseDef struct {
		name string
		make func(i int) (*wdm.Network, int, int)
	}
	cases := []caseDef{
		{"trap-6node", func(i int) (*wdm.Network, int, int) {
			return trapNet(), 0, 5
		}},
		{"waxman-16", func(i int) (*wdm.Network, int, int) {
			net := topo.Waxman(16, 0.35, 0.35, int64(i), topo.Config{W: 4})
			return net, 0, 15
		}},
		{"nsfnet", func(i int) (*wdm.Network, int, int) {
			rng := rand.New(rand.NewSource(int64(i)))
			net := topo.NSFNET(topo.Config{W: 4})
			s := rng.Intn(14)
			d := rng.Intn(13)
			if d >= s {
				d++
			}
			return net, s, d
		}},
	}
	for _, c := range cases {
		type sample struct {
			okA, okT bool
			ratio    float64
		}
		samples := parallel.MapWithState(seeds, 0, newRouter, func(router *core.Router, i int) sample {
			net, s, d := c.make(i)
			ra, okA := router.ApproxMinCost(net, s, d)
			rt, okT := router.TwoStepMinCost(net, s, d)
			out := sample{okA: okA, okT: okT}
			if okA && okT {
				out.ratio = rt.Cost / ra.Cost
			}
			return out
		})
		okA, okT := 0, 0
		var ratio stats.Stream
		for _, s := range samples {
			if s.okA {
				okA++
			}
			if s.okT {
				okT++
			}
			if s.okA && s.okT {
				ratio.Add(s.ratio)
			}
		}
		t.AddRow(c.name, fmt.Sprint(seeds),
			fmtPct(float64(okA)/float64(seeds)), fmtPct(float64(okT)/float64(seeds)),
			fmtF(ratio.Mean()))
	}
	return t
}

func trapNet() *wdm.Network {
	g := wdm.NewNetwork(6, 2)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 4, 1)
	g.AddUniformLink(4, 5, 1)
	g.AddUniformLink(1, 2, 2)
	g.AddUniformLink(2, 5, 2)
	g.AddUniformLink(0, 3, 2)
	g.AddUniformLink(3, 4, 2)
	g.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	return g
}

// E9 validates the §3.1 integer program: agreement with the exhaustive
// oracle and branch-and-bound effort.
func E9(o Options) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "ILP exact solver vs exhaustive oracle (§3.1)",
		Columns: []string{"n", "W", "instances", "agree", "mean vars", "mean cons", "mean B&B nodes"},
		Notes:   "agree = identical feasibility and objective (1e-5); the ILP is Eqs. 3–21 with linearised (17)–(18)",
	}
	type cfg struct{ n, w int }
	cfgs := []cfg{{4, 2}, {5, 2}, {5, 3}}
	if o.Quick {
		cfgs = cfgs[:2]
	}
	seeds := o.seeds(30, 6)
	for _, c := range cfgs {
		type sample struct {
			agree                bool
			vars, cons, bbNodes  int
			feasible, comparable bool
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			rng := rand.New(rand.NewSource(int64(53000 + 100*c.n + i)))
			net := randomInstance(rng, c.n, c.w, 0.2)
			s, d := 0, c.n-1
			esol, _, okE := exact.Exhaustive(net, s, d, 0)
			isol, st, okI := exact.ILP(net, s, d, exact.ILPConfig{})
			out := sample{vars: st.Vars, cons: st.Constraints, bbNodes: st.Nodes, comparable: true}
			switch {
			case okE != okI:
				out.agree = false
			case !okE:
				out.agree = true
			default:
				out.agree = math.Abs(esol.Cost-isol.Cost) < 1e-5
				out.feasible = true
			}
			return out
		})
		agree := 0
		var vars, cons, nodes stats.Stream
		for _, s := range samples {
			if s.agree {
				agree++
			}
			vars.Add(float64(s.vars))
			cons.Add(float64(s.cons))
			nodes.Add(float64(s.bbNodes))
		}
		t.AddRow(fmt.Sprint(c.n), fmt.Sprint(c.w), fmt.Sprint(seeds),
			fmtPct(float64(agree)/float64(seeds)),
			fmtF(vars.Mean()), fmtF(cons.Mean()), fmtF(nodes.Mean()))
	}
	return t
}

// newRouter is the per-worker state hook for parallel.MapWithState: each
// sweep worker reuses one routing engine across all its samples.
func newRouter() *core.Router { return core.NewRouter(nil) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
