// wdmsim runs a dynamic-traffic simulation (§2 traffic model) on a named
// topology and prints blocking, cost, load, restoration and reconfiguration
// metrics:
//
//	wdmsim -topo nsfnet -w 8 -erlang 30 -count 2000 -algo min-load-cost
//	wdmsim -topo arpa2 -w 8 -erlang 40 -failures 0.5 -restore passive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	topoName := flag.String("topo", "nsfnet", "topology: nsfnet, arpa2, ring, waxman")
	n := flag.Int("n", 16, "node count for parametric topologies")
	w := flag.Int("w", 8, "wavelengths per fiber")
	erlang := flag.Float64("erlang", 30, "offered load λ/µ (arrival rate with unit mean holding)")
	count := flag.Int("count", 2000, "number of requests")
	seed := flag.Int64("seed", 1, "workload + failure seed")
	algo := flag.String("algo", "min-load-cost", "routing: min-cost, min-load, min-load-cost, two-step")
	restore := flag.String("restore", "active", "restoration: active, passive")
	failures := flag.Float64("failures", 0, "link-failure rate (0 = none)")
	repair := flag.Float64("repair", 5, "link repair time")
	reconfigTh := flag.Float64("reconfig", 0.6, "reconfiguration load threshold (0 = off)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	traffic := flag.String("traffic", "uniform", "endpoint model: uniform, gravity, diurnal")
	period := flag.Float64("period", 200, "diurnal cycle length in sim-time units (with -traffic diurnal)")
	amp := flag.Float64("amp", 0.8, "diurnal rate swing in [0,1) (with -traffic diurnal)")
	matrixFile := flag.String("matrix", "", "load the traffic matrix from a text file (overrides -traffic)")
	holding := flag.String("holding", "exp", "holding-time distribution: exp, det, pareto")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot to this file (.json → JSON, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (and /metrics) on this address, e.g. localhost:6060")
	summaryOut := flag.String("summary-out", "", "write a structured JSON run summary (config + stats + metrics) to this file")
	serveAddr := flag.String("serve", "", "serve the debug endpoints (/healthz, /metrics, /debug/flight, /debug/explain, /debug/pprof) on this address")
	flightCap := flag.Int("flight", obs.DefaultCapacity, "flight-recorder capacity (last N request traces)")
	flightOut := flag.String("flight-out", "", "dump the flight recorder as JSONL to this file at end of run")
	linger := flag.Float64("linger", 0, "keep the -serve endpoints up this many seconds after the run (for probes)")
	candidates := flag.Int("candidates", 0, "candidate fast tier: precompute k route pairs per node pair and try them before exact routing (0 = off)")
	soak := flag.Bool("soak", false, "soak mode: collect windowed telemetry and print the latency/blocking curve")
	sloP99 := flag.Float64("slo-p99", 0, "SLO: p99 routing latency ceiling in seconds, evaluated per telemetry window (0 = off)")
	sloBlocking := flag.Float64("slo-blocking", 0, "SLO: blocking-probability ceiling per telemetry window (0 = off)")
	incidentDir := flag.String("incident-dir", "", "capture incident bundles into this directory on SLO breach")
	window := flag.Float64("window", 5, "telemetry window width in sim-time units")
	timeseriesOut := flag.String("timeseries-out", "", "stream sealed telemetry windows to this file (.csv → CSV, else JSONL)")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	// Instrumentation is default-off; any observability flag switches the
	// whole engine's metrics on.
	var reg *metrics.Registry
	if *metricsOut != "" || *pprofAddr != "" || *summaryOut != "" || *serveAddr != "" {
		reg = cli.EnableAllMetrics()
	}
	if *pprofAddr != "" {
		addr, err := cli.StartPprof(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof + /metrics listening on http://%s\n", addr)
	}

	// Request tracing rides behind -serve or -flight-out: every routed
	// request gets a trace, the last -flight N live in the ring. With
	// -flight-out, the first non-OK request dumps the ring immediately, so a
	// crash mid-run still leaves a capture; the end-of-run dump overwrites it
	// with the final state.
	var tracer *obs.Tracer
	if *serveAddr != "" || *flightOut != "" {
		cfg := obs.Config{Capacity: *flightCap}
		if *flightOut != "" {
			path := *flightOut
			cfg.OnFailure = func(fr *obs.FlightRecorder, _ *obs.Trace) {
				if err := fr.DumpFile(path); err != nil {
					fmt.Fprintf(os.Stderr, "warning: first-failure flight dump: %v\n", err)
				}
			}
		}
		tracer = obs.New(cfg)
	}
	// Windowed telemetry rides behind -soak, -timeseries-out or -serve: the
	// simulator cuts sim-time windows of -window units, each carrying routing
	// latency quantiles, blocking, reroute counts and a network-state probe.
	var tel *netsim.Telemetry
	if *soak || *timeseriesOut != "" || *serveAddr != "" {
		tel = netsim.NewTelemetry(*window, 0)
	}
	var tsSink interface{ Close() error }
	if *timeseriesOut != "" {
		fh, err := os.Create(*timeseriesOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if strings.HasSuffix(*timeseriesOut, ".csv") {
			snk := timeseries.NewCSV(fh)
			tel.Collector().SetSink(snk)
			tsSink = snk
		} else {
			snk := timeseries.NewJSONL(fh)
			tel.Collector().SetSink(snk)
			tsSink = snk
		}
	}
	// SLO objectives over the simulator's sim-time windows: same watchdog as
	// wdmd, driven by the collector's SimClock instead of wall time.
	var watchdog *slo.Watchdog
	var capturer *slo.Capturer
	if *sloP99 > 0 || *sloBlocking > 0 {
		if tel == nil {
			fmt.Fprintln(os.Stderr, "slo flags need telemetry (-soak, -serve or -timeseries-out)")
			os.Exit(1)
		}
		var objectives []slo.Objective
		if *sloP99 > 0 {
			objectives = append(objectives, slo.Objective{
				Name: "route-p99", Series: netsim.SeriesRouteLatency, Kind: slo.KindP99, Max: *sloP99,
			})
		}
		if *sloBlocking > 0 {
			objectives = append(objectives, slo.Objective{
				Name: "blocking", Series: netsim.SeriesBlocking, Kind: slo.KindRatio, Max: *sloBlocking,
			})
		}
		wd, err := slo.New(objectives...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		watchdog = wd
		watchdog.EnableMetrics(reg)
		if *incidentDir != "" {
			cap, err := slo.NewCapturer(slo.CaptureConfig{
				Dir:    *incidentDir,
				Flight: tracer.Flight(),
				Series: tel.Collector(),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			capturer = cap
			watchdog.OnBreach(capturer.HandleBreach)
		}
		watchdog.Bind(tel.Collector())
	}
	if *serveAddr != "" {
		addr, err := cli.StartDebugServer(*serveAddr, cli.DebugOpts{
			Metrics:   reg,
			Flight:    tracer.Flight(),
			Series:    tel.Collector(),
			NetState:  tel.NetState,
			SLO:       watchdog,
			Incidents: capturer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug endpoints listening on http://%s\n", addr)
	}

	net, err := cli.BuildTopology(*topoName, *n, *w, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	algorithm, err := cli.ParseAlgorithm(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	restoration, err := cli.ParseRestoration(*restore)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	simCfg := netsim.Config{
		Algorithm:         algorithm,
		Restoration:       restoration,
		FailureRate:       *failures,
		RepairTime:        *repair,
		Seed:              *seed,
		ReconfigThreshold: *reconfigTh,
		ReconfigCooldown:  0.2,
		Tracer:            tracer,
		Telemetry:         tel,
	}
	if *candidates > 0 {
		// Build the table up front from the pristine topology — it is
		// state-independent, so this is a one-time setup cost.
		simCfg.Opts = &core.Options{CandidateTable: core.NewCandidateTable(net, *candidates)}
	}
	var traceRec *trace.JSONL
	if *tracePath != "" {
		fh, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		traceRec = trace.NewJSONL(fh)
		simCfg.Trace = traceRec
	}
	sim := netsim.New(net, simCfg)
	var matrix *workload.Matrix
	switch {
	case *matrixFile != "":
		fh, err := os.Open(*matrixFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		matrix, err = workload.ParseMatrix(fh)
		fh.Close() //wdmlint:ignore errcheck-lite file opened read-only, no buffered writes to lose
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if matrix.Nodes() != net.Nodes() {
			fmt.Fprintf(os.Stderr, "traffic matrix is %d×%d but the topology has %d nodes\n",
				matrix.Nodes(), matrix.Nodes(), net.Nodes())
			os.Exit(1)
		}
	case *traffic == "uniform", *traffic == "diurnal":
		// Diurnal shapes the arrival process, not the endpoints: it rides a
		// uniform matrix (or the -matrix file when given).
		matrix = workload.NewUniformMatrix(net.Nodes())
	case *traffic == "gravity":
		// Synthetic populations: every third node is a 3× hub.
		pops := make([]float64, net.Nodes())
		for i := range pops {
			pops[i] = 1
			if i%3 == 0 {
				pops[i] = 3
			}
		}
		matrix = workload.NewGravityMatrix(pops)
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic model %q\n", *traffic)
		os.Exit(1)
	}
	var dist workload.HoldingDist
	switch *holding {
	case "exp":
		dist = workload.HoldingExponential
	case "det":
		dist = workload.HoldingDeterministic
	case "pareto":
		dist = workload.HoldingPareto
	default:
		fmt.Fprintf(os.Stderr, "unknown holding distribution %q\n", *holding)
		os.Exit(1)
	}
	mc := workload.MatrixConfig{
		Matrix: matrix, ArrivalRate: *erlang, MeanHolding: 1,
		Count: *count, Seed: *seed, Holding: dist,
	}
	var reqs []workload.Request
	if *traffic == "diurnal" {
		reqs = workload.DiurnalPoisson(workload.DiurnalConfig{MatrixConfig: mc, Period: *period, Amp: *amp})
	} else {
		reqs = workload.MatrixPoisson(mc)
	}
	m := sim.Run(reqs)

	// An incomplete event trace is data loss, not a warning: exit non-zero
	// after the summary so scripts piping the trace into analysis fail loudly.
	traceBroken := false
	if traceRec != nil {
		if err := traceRec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "error: trace file %s incomplete: %v\n", *tracePath, err)
			traceBroken = true
		} else if err := sim.TraceErr(); err != nil {
			fmt.Fprintf(os.Stderr, "error: trace file %s incomplete: %v\n", *tracePath, err)
			traceBroken = true
		}
	}
	// The telemetry export shares the trace file's contract: a curve with
	// windows missing on disk fails the run.
	if tsSink != nil {
		if err := tsSink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "error: timeseries file %s incomplete: %v\n", *timeseriesOut, err)
			traceBroken = true
		} else if err := tel.Collector().SinkErr(); err != nil {
			fmt.Fprintf(os.Stderr, "error: timeseries file %s incomplete: %v\n", *timeseriesOut, err)
			traceBroken = true
		}
	}
	if *flightOut != "" {
		if err := tracer.Flight().DumpFile(*flightOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("scenario        %s, n=%d, W=%d, %s routing, %s restoration\n",
		*topoName, net.Nodes(), *w, algorithm, restoration)
	fmt.Printf("offered         %d requests at %.4g Erlang over horizon %.4g\n",
		m.Offered, *erlang, m.Horizon)
	fmt.Printf("accepted        %d   blocked %d   (blocking %.2f%%)\n",
		m.Accepted, m.Blocked, 100*m.BlockingProbability())
	fmt.Printf("pair cost       %s\n", m.Cost.String())
	fmt.Printf("primary hops    %s\n", m.Hops.String())
	fmt.Printf("network load    mean %.4g   max %.4g\n", m.MeanLoad(), m.MaxNetworkLoad)
	if *reconfigTh > 0 {
		fmt.Printf("reconfigs       %d threshold crossings (ρ ≥ %.3g), %d connections rerouted\n",
			m.Reconfigs, *reconfigTh, m.ReroutedConns)
	}
	if *failures > 0 {
		fmt.Printf("failures        %d events, %d connections affected\n",
			m.FailureEvents, m.AffectedConns)
		fmt.Printf("restoration     %d recovered, %d lost, %d backups degraded\n",
			m.Recovered, m.RecoveryFailed, m.BackupLost)
		if m.Availability.N() > 0 {
			fmt.Printf("availability    %.4f mean served fraction\n", m.Availability.Mean())
		}
		if m.RecoveryWork.N() > 0 {
			fmt.Printf("recovery work   %s links signalled per recovery\n", m.RecoveryWork.String())
		}
	}

	if *soak {
		printCurve(tel.Collector())
	}

	if *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *summaryOut != "" {
		cfg := map[string]any{
			"topo": *topoName, "n": net.Nodes(), "w": *w,
			"erlang": *erlang, "count": *count, "seed": *seed,
			"algo": algorithm.String(), "restore": restoration.String(),
			"failures": *failures, "repair": *repair,
			"reconfig": *reconfigTh, "traffic": *traffic, "holding": *holding,
		}
		if err := cli.WriteSummary(*summaryOut, cfg, cli.SummarizeSim(m), reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *serveAddr != "" && *linger > 0 {
		// Keep the debug endpoints up so probes (CI smoke tests, manual
		// curls) can inspect the finished run's flight recorder.
		fmt.Fprintf(os.Stderr, "lingering %.3gs for debug probes\n", *linger)
		time.Sleep(time.Duration(*linger * float64(time.Second)))
	}
	if traceBroken {
		os.Exit(1)
	}
}

// printCurve renders the retained telemetry windows as a compact table:
// per-window routing-latency quantiles, blocking, link load and
// reconfigurations, strided so long soaks print at most maxRows rows (every
// window still reaches -timeseries-out and /debug/timeseries).
func printCurve(col *timeseries.Collector) {
	snaps := col.Snapshots(0)
	if len(snaps) == 0 {
		return
	}
	const maxRows = 12
	stride := (len(snaps) + maxRows - 1) / maxRows
	if evicted := col.Evicted(); evicted > 0 {
		fmt.Printf("telemetry curve (last %d of %d windows; older evicted from memory)\n",
			len(snaps), col.TotalSealed())
	} else {
		fmt.Printf("telemetry curve (%d windows)\n", len(snaps))
	}
	fmt.Printf("  %10s %8s %9s %9s %8s %7s %7s %7s\n",
		"t", "offered", "p50(µs)", "p99(µs)", "block%", "ρmean", "ρmax", "reconf")
	for i := 0; i < len(snaps); i += stride {
		s := &snaps[i]
		lat, _ := s.Hist(netsim.SeriesRouteLatency)
		blk, _ := s.RatioOf(netsim.SeriesBlocking)
		lm, _ := s.GaugeOf(netsim.SeriesLinkLoadMean)
		lx, _ := s.GaugeOf(netsim.SeriesLinkLoadMax)
		rc, _ := s.RateOf(netsim.SeriesReconfigs)
		fmt.Printf("  %10.4g %8d %9.3g %9.3g %8.3g %7.3f %7.3f %7d\n",
			s.End, blk.Den, lat.P50*1e6, lat.P99*1e6, 100*blk.Value, lm.Last, lx.Last, rc.Count)
	}
}
