// Provisioning: the offline counterpart of the paper's dynamic problem —
// a known demand set is placed all at once (cited in §1 as the static
// fault-tolerant design problem). The example compares demand orderings,
// runs improvement passes, and finishes with a full reconfiguration to
// squeeze the maximum link load down.
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func demandSet(seed int64, count int) []repro.Demand {
	rng := rand.New(rand.NewSource(seed))
	ds := make([]repro.Demand, count)
	for i := range ds {
		s := rng.Intn(14)
		d := rng.Intn(13)
		if d >= s {
			d++
		}
		ds[i] = repro.Demand{ID: i, Src: s, Dst: d}
	}
	return ds
}

func main() {
	const count = 12
	fmt.Printf("NSFNET, W=4, %d static demands (each gets primary + backup)\n\n", count)
	fmt.Printf("%-16s %8s %12s %10s\n", "ordering", "placed", "total cost", "final ρ")

	type runCfg struct {
		name  string
		order int
	}
	for _, c := range []runCfg{
		{"input order", 0},
		{"longest first", 1},
		{"shortest first", 2},
	} {
		net := repro.NSFNET(repro.TopoConfig{W: 4})
		cfg := repro.ProvisionConfig{Router: repro.ProvisionMinCost, ImprovePasses: 2}
		switch c.order {
		case 1:
			cfg.Order = repro.OrderLongestFirst
		case 2:
			cfg.Order = repro.OrderShortestFirst
		}
		res := repro.Provision(net, demandSet(11, count), cfg)
		fmt.Printf("%-16s %8d %12.1f %10.3f\n", c.name, res.Placed, res.TotalCost, res.NetworkLoad)
	}

	// Take the shortest-first layout and reconfigure it for load.
	net := repro.NSFNET(repro.TopoConfig{W: 4})
	res := repro.Provision(net, demandSet(11, count), repro.ProvisionConfig{
		Router: repro.ProvisionMinCost, Order: repro.OrderShortestFirst,
	})
	var conns []*repro.LiveConnection
	for _, p := range res.Placements {
		if p.Route != nil {
			conns = append(conns, &repro.LiveConnection{
				ID: p.Demand.ID, Src: p.Demand.Src, Dst: p.Demand.Dst,
				Primary: p.Route.Primary, Backup: p.Route.Backup,
			})
		}
	}
	rec := repro.Reoptimize(net, conns, 0, nil)
	fmt.Printf("\nfull reconfiguration of the shortest-first layout:\n")
	fmt.Printf("  ρ %.3f → %.3f, %d connections moved in %d rounds\n",
		rec.LoadBefore, rec.LoadAfter, rec.Moves, rec.Rounds)
	fmt.Println("\nThe dynamic algorithms of the paper avoid exactly this frozen-network")
	fmt.Println("re-layout by keeping ρ low at routing time (§4).")
}
