package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/timeseries"
)

// Telemetry series names, as they appear in /debug/timeseries and the
// JSONL/CSV export. They mirror the simulator's series where the semantics
// match, so soak curves from wdmsim and wdmd plot on the same axes.
const (
	// SeriesRequestLatency is the end-to-end request latency histogram
	// (seconds, queue + route + commit; p50/p95/p99 per window).
	SeriesRequestLatency = "request_latency_seconds"
	// SeriesBlocking is the per-window blocking probability over provisions.
	SeriesBlocking = "blocking"
	// SeriesAccepted counts provisions accepted per window.
	SeriesAccepted = "accepted"
	// SeriesTeardowns counts teardowns per window.
	SeriesTeardowns = "teardowns"
	// SeriesReroutes counts reroute requests per window.
	SeriesReroutes = "reroutes"
	// SeriesEpochs counts epochs published per window.
	SeriesEpochs = "epochs"
	// SeriesBatchFill is the mean committed batch size per window.
	SeriesBatchFill = "batch_fill"
	// SeriesActiveConns gauges the live connection count at each seal.
	SeriesActiveConns = "active_conns"
	// SeriesLinkLoadMean / SeriesLinkLoadMax gauge per-link ρ(e) aggregates
	// at each seal; the max is the network load ρ of Eq. 2.
	SeriesLinkLoadMean = "link_load_mean"
	SeriesLinkLoadMax  = "link_load_max"
	// SeriesFragMean gauges mean first-fit wavelength fragmentation.
	SeriesFragMean = "frag_mean"
)

// telemetry adapts the single-owner timeseries.Collector to the daemon's
// many-goroutine request path: every instrument write happens under one
// mutex (the collector's owner-goroutine contract is "one writer at a
// time", which a mutex provides just as well as a single goroutine), and a
// ticker goroutine advances the wall-clock windows so curves seal even when
// the daemon is idle. A nil-window telemetry is permanently off and costs
// one nil check per request.
type telemetry struct {
	e   *Engine
	col *timeseries.Collector

	mu       sync.Mutex
	reqLat   *timeseries.Histogram
	blocking *timeseries.Ratio
	accepted *timeseries.Rate
	tears    *timeseries.Rate
	routes   *timeseries.Rate
	epochs   *timeseries.Rate
	fill     *timeseries.Gauge
	active   *timeseries.Gauge
	loadMean *timeseries.Gauge
	loadMax  *timeseries.Gauge
	fragMean *timeseries.Gauge

	clock    *timeseries.WallClock
	netState atomic.Pointer[timeseries.NetState]
	sink     timeseries.Sink
	closer   func() error

	stop chan struct{}
	tick sync.WaitGroup
}

// newTelemetry builds the bundle; window <= 0 disables it (all methods
// no-op on the nil receiver).
func newTelemetry(e *Engine, window float64, retention int) *telemetry {
	if window <= 0 {
		return nil
	}
	clock := timeseries.NewWallClock()
	col := timeseries.New(timeseries.Config{Window: window, Retention: retention, Clock: clock})
	t := &telemetry{
		e:        e,
		col:      col,
		clock:    clock,
		reqLat:   col.Histogram(SeriesRequestLatency, nil),
		blocking: col.Ratio(SeriesBlocking),
		accepted: col.Rate(SeriesAccepted),
		tears:    col.Rate(SeriesTeardowns),
		routes:   col.Rate(SeriesReroutes),
		epochs:   col.Rate(SeriesEpochs),
		fill:     col.Gauge(SeriesBatchFill),
		active:   col.Gauge(SeriesActiveConns),
		loadMean: col.Gauge(SeriesLinkLoadMean),
		loadMax:  col.Gauge(SeriesLinkLoadMax),
		fragMean: col.Gauge(SeriesFragMean),
		stop:     make(chan struct{}),
	}
	col.OnSeal(func(at float64) {
		// OnSeal runs with the collector unlocked, on whichever goroutine
		// sealed the window (ticker or a request under t.mu — both safe: the
		// probe reads only the immutable epoch snapshot).
		ns := timeseries.ProbeNetwork(e.store.load().net, at, e.LiveConnections())
		t.loadMean.Set(ns.MeanLoad)
		t.loadMax.Set(ns.MaxLoad)
		t.fragMean.Set(ns.MeanFrag)
		t.active.Set(float64(ns.ActiveConns))
		t.netState.Store(ns)
	})
	return t
}

// SetSink attaches a streaming export sink plus its closer (e.g. a JSONL
// writer over a file); call before Start.
func (t *telemetry) SetSink(s timeseries.Sink, closer func() error) {
	if t == nil {
		return
	}
	t.sink = s
	t.closer = closer
	t.col.SetSink(s)
}

// collector exposes the underlying collector for /debug/timeseries (nil
// when telemetry is off).
func (t *telemetry) collector() *timeseries.Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// state returns the latest sealed network snapshot for /debug/net.
func (t *telemetry) state() *timeseries.NetState {
	if t == nil {
		return nil
	}
	return t.netState.Load()
}

// startTicker launches the window-advancing goroutine (4 ticks per window,
// so idle periods still seal on time).
func (t *telemetry) startTicker() {
	if t == nil {
		return
	}
	period := time.Duration(t.col.Window() / 4 * float64(time.Second))
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t.tick.Add(1)
	go func() {
		defer t.tick.Done()
		tk := time.NewTicker(period)
		defer tk.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tk.C:
				t.mu.Lock()
				t.col.Advance(t.clock.Now())
				t.mu.Unlock()
			}
		}
	}()
}

// observe records one finished request.
func (t *telemetry) observe(kind string, lat time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.col.Advance(t.clock.Now())
	t.reqLat.Observe(lat.Seconds())
	switch kind {
	case "provision":
		t.blocking.Observe(!ok)
		if ok {
			t.accepted.Inc()
		}
	case "teardown":
		t.tears.Inc()
	case "reroute":
		t.routes.Inc()
	}
}

// epochSealed records one published epoch and its batch size (committer
// goroutine).
func (t *telemetry) epochSealed(batch int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epochs.Inc()
	t.fill.Set(float64(batch))
}

// SetTelemetrySink attaches a streaming export sink (JSONL/CSV over a file)
// plus its closer to the engine's telemetry; call before Start. No-op when
// telemetry is disabled.
func (e *Engine) SetTelemetrySink(s timeseries.Sink, closer func() error) {
	e.tel.SetSink(s, closer)
}

// Collector exposes the telemetry collector for /debug/timeseries (nil when
// telemetry is disabled).
func (e *Engine) Collector() *timeseries.Collector { return e.tel.collector() }

// NetState returns the latest sealed per-link network snapshot for
// /debug/net (nil before the first seal or when telemetry is disabled).
func (e *Engine) NetState() *timeseries.NetState { return e.tel.state() }

// err reports the first sink error without closing.
func (t *telemetry) err() error {
	if t == nil {
		return nil
	}
	return t.col.SinkErr()
}

// close stops the ticker, seals the final partial window, and closes the
// sink. The first error wins — this is why Engine.Close returns an error
// worth checking.
func (t *telemetry) close() error {
	if t == nil {
		return nil
	}
	close(t.stop)
	t.tick.Wait()
	t.mu.Lock()
	t.col.Seal()
	t.mu.Unlock()
	err := t.col.SinkErr()
	if t.closer != nil {
		if cerr := t.closer(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
