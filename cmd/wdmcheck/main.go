// wdmcheck soaks the routing engine against the verification oracle: it
// generates seeded random instances, routes each request stream through a
// fresh and a warm core.Router, checks every invariant (path legality,
// wavelength availability, edge-/node-disjointness, Eq. 1 cost accounting,
// Eq. 2 load bookkeeping, capacity conservation), and — with -exact — pits
// the approximation against the exact solvers on Theorem-2-eligible
// instances to certify the factor-2 bound. Failures are shrunk to minimal
// instances and dumped as JSON artifacts that -replay reruns:
//
//	wdmcheck -n 500 -seed 1 -exact
//	wdmcheck -n 2000 -size 9 -json fail.json
//	wdmcheck -replay fail.json -exact
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/check/harness"
	"repro/internal/cli"
)

func main() {
	n := flag.Int("n", 500, "number of random instances")
	seed := flag.Int64("seed", 1, "base seed (instance i uses seed+i)")
	size := flag.Int("size", 7, "max nodes per instance")
	exact := flag.Bool("exact", false, "compare against exact solvers on eligible instances")
	routes := flag.Int("routes", 2000, "exact route-enumeration cap")
	candidates := flag.Int("candidates", 0, "enable the candidate fast-tier arm with k candidate pairs (0 = off)")
	candGate := flag.Float64("cand-gate", 2, "max candidate/exact cost ratio before the accuracy gate fails")
	jsonPath := flag.String("json", "", "write the first failure artifact to this file")
	replay := flag.String("replay", "", "replay an artifact file instead of generating")
	verbose := flag.Bool("v", false, "print every failure artifact to stderr")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	cfg := harness.Config{
		N:             *n,
		Seed:          *seed,
		MaxNodes:      *size,
		Exact:         *exact,
		MaxRoutes:     *routes,
		Candidates:    *candidates,
		CandidateGate: *candGate,
	}

	if *replay != "" {
		art, err := check.LoadArtifact(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := art.Instance
		if art.Shrunk != nil {
			in = art.Shrunk
		}
		if err := harness.RunInstance(in, cfg, nil); err != nil {
			fmt.Fprintf(os.Stderr, "wdmcheck: replay still fails: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wdmcheck: replay passed")
		return
	}

	rep := harness.Run(cfg)
	fmt.Printf("wdmcheck: %s\n", rep.Summary())
	if rep.OK() {
		return
	}
	if *verbose {
		for i := range rep.Failures {
			fmt.Fprintf(os.Stderr, "--- failure %d ---\n", i)
			_ = rep.Failures[i].Encode(os.Stderr)
		}
	} else {
		fmt.Fprintf(os.Stderr, "wdmcheck: first failure: %s\n", rep.Failures[0].Err)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			err := rep.Failures[0].Encode(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintf(os.Stderr, "wdmcheck: artifact written to %s\n", *jsonPath)
			}
		}
	}
	os.Exit(1)
}
