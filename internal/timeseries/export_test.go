package timeseries

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fillDeterministic drives a seeded synthetic stream through the collector:
// five windows of latency samples, counters, a blocking ratio and a load
// gauge. Purely arithmetic, so the exported bytes are stable across runs and
// platforms — the simulator's own latencies are wall-clock and would not be.
func fillDeterministic(c simCol) {
	rng := rand.New(rand.NewSource(7))
	h := c.Histogram("route_latency_seconds", nil)
	acc := c.Rate("accepted")
	blk := c.Ratio("blocking")
	load := c.Gauge("link_load_mean")
	c.OnSeal(func(end float64) { load.Set(0.1 * end) })
	for w := 0; w < 5; w++ {
		for i := 0; i < 40; i++ {
			h.Observe(1e-5 * math.Pow(100, rng.Float64()))
			hit := rng.Float64() < 0.2
			blk.Observe(hit)
			if !hit {
				acc.Inc()
			}
		}
		c.advance(float64(w+1) * 2)
	}
}

func checkGolden(t *testing.T, got []byte, name string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/timeseries -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (re-run with -update if intended)\ngot:\n%s", name, got)
	}
}

func TestGoldenJSONL(t *testing.T) {
	c := newSimCol(2, 0)
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	c.SetSink(sink)
	fillDeterministic(c)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SinkErr(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "soak.jsonl")

	// The stream parses back into exactly the snapshots the ring retained.
	parsed, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, c.Snapshots(0)) {
		t.Fatal("JSONL roundtrip diverged from retained snapshots")
	}
}

func TestGoldenCSV(t *testing.T) {
	c := newSimCol(2, 0)
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	c.SetSink(sink)
	fillDeterministic(c)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SinkErr(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "soak.csv")
}

func TestCSVRejectsRaggedWindows(t *testing.T) {
	c := newSimCol(1, 0)
	var buf bytes.Buffer
	c.SetSink(NewCSV(&buf))
	c.Rate("a")
	c.advance(1)
	// Registering a series mid-run would change the column set; the CSV sink
	// must fail loudly rather than silently write a ragged file.
	c.Rate("b")
	c.advance(2)
	if c.SinkErr() == nil {
		t.Fatal("ragged CSV accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("enospc") }

func TestJSONLFlushErrorLatches(t *testing.T) {
	j := NewJSONL(failWriter{})
	s := &Snapshot{Window: 1}
	// The bufio buffer absorbs the first write; the failure surfaces at
	// Flush and latches.
	_ = j.WriteSnapshot(s)
	if err := j.Flush(); err == nil {
		t.Fatal("flush error lost")
	}
	if err := j.WriteSnapshot(s); err == nil {
		t.Fatal("write after failure did not return the latched error")
	}
	if err := j.Close(); err == nil {
		t.Fatal("close lost the latched error")
	}
}
