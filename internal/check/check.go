// Package check is the verification oracle behind the randomized testing
// subsystem: invariant validators that re-derive the paper's guarantees from
// first principles, a seeded random instance generator (gen.go) with
// iterative shrinking to minimal failing cases (shrink.go), and JSON failure
// artifacts (artifact.go).
//
// The validators deliberately recompute everything — path connectivity,
// wavelength installation and availability, conversion legality, the Eq. 1
// cost, and the Eq. 2 load bookkeeping — instead of delegating to the
// methods on wdm.Semilightpath, so a bug in the production accessors cannot
// hide itself from its own checker.
//
// The differential driver that routes generated instances through the
// production engines lives in the harness subpackage. Keeping it out of this
// package lets any test in the repository (including in-package tests of
// packages that internal/core depends on) import the validators without an
// import cycle.
package check

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/wdm"
)

// Path verifies from first principles that p is a connected directed walk
// from s to t whose every hop rides an installed wavelength and whose every
// implied conversion is allowed by the intermediate node's switch. Node
// revisits are permitted (a semilightpath may legally pass through a node
// twice when conversion makes it profitable); availability is not required —
// see PathAvailable and Reserved for the residual-state variants.
func Path(net *wdm.Network, p *wdm.Semilightpath, s, t int) error {
	if p == nil || len(p.Hops) == 0 {
		return fmt.Errorf("check: empty semilightpath")
	}
	if s < 0 || s >= net.Nodes() || t < 0 || t >= net.Nodes() {
		return fmt.Errorf("check: endpoints (%d,%d) out of range [0,%d)", s, t, net.Nodes())
	}
	at := s
	for i, h := range p.Hops {
		if h.Link < 0 || h.Link >= net.Links() {
			return fmt.Errorf("check: hop %d: link %d out of range [0,%d)", i, h.Link, net.Links())
		}
		l := net.Link(h.Link)
		if l.From != at {
			return fmt.Errorf("check: hop %d: link %d leaves node %d, walk is at %d", i, h.Link, l.From, at)
		}
		if h.Wavelength < 0 || h.Wavelength >= net.W() {
			return fmt.Errorf("check: hop %d: λ%d out of range [0,%d)", i, h.Wavelength, net.W())
		}
		if !l.Lambda().Contains(h.Wavelength) {
			return fmt.Errorf("check: hop %d: λ%d not installed on link %d", i, h.Wavelength, h.Link)
		}
		if i > 0 {
			prev := p.Hops[i-1].Wavelength
			if prev != h.Wavelength && !net.Converter(at).Allowed(prev, h.Wavelength) {
				return fmt.Errorf("check: hop %d: conversion λ%d→λ%d not allowed at node %d",
					i, prev, h.Wavelength, at)
			}
		}
		at = l.To
	}
	if at != t {
		return fmt.Errorf("check: walk ends at node %d, want %d", at, t)
	}
	return nil
}

// PathAvailable is Path plus the requirement that every hop's wavelength is
// currently in Λ_avail of its link — the state a freshly routed, not yet
// established pair must be in.
func PathAvailable(net *wdm.Network, p *wdm.Semilightpath, s, t int) error {
	if err := Path(net, p, s, t); err != nil {
		return err
	}
	for i, h := range p.Hops {
		if !net.Link(h.Link).HasAvail(h.Wavelength) {
			return fmt.Errorf("check: hop %d: λ%d on link %d is not available", i, h.Wavelength, h.Link)
		}
	}
	return nil
}

// Reserved verifies that every hop of p holds its channel: the wavelength is
// installed on the link but absent from Λ_avail — the state an established
// connection must be in.
func Reserved(net *wdm.Network, p *wdm.Semilightpath) error {
	if p == nil || len(p.Hops) == 0 {
		return fmt.Errorf("check: empty semilightpath")
	}
	for i, h := range p.Hops {
		if h.Link < 0 || h.Link >= net.Links() {
			return fmt.Errorf("check: hop %d: link %d out of range", i, h.Link)
		}
		l := net.Link(h.Link)
		if h.Wavelength < 0 || h.Wavelength >= net.W() || !l.Lambda().Contains(h.Wavelength) {
			return fmt.Errorf("check: hop %d: λ%d not installed on link %d", i, h.Wavelength, h.Link)
		}
		if l.HasAvail(h.Wavelength) {
			return fmt.Errorf("check: hop %d: λ%d on link %d is marked available but should be held", i, h.Wavelength, h.Link)
		}
	}
	return nil
}

// PathCost recomputes the Eq. 1 cost of p from first principles:
// Σ w(e_i, λ_i) + Σ c_{head(e_i)}(λ_i, λ_{i+1}), asking the converter
// directly (identity conversions are free by definition, disallowed ones
// cost +Inf). It assumes the path already passed Path.
func PathCost(net *wdm.Network, p *wdm.Semilightpath) float64 {
	c := 0.0
	for i, h := range p.Hops {
		c += net.Link(h.Link).Cost(h.Wavelength)
		if i > 0 {
			prev := p.Hops[i-1].Wavelength
			if prev != h.Wavelength {
				v := net.Link(p.Hops[i-1].Link).To
				if !net.Converter(v).Allowed(prev, h.Wavelength) {
					return math.Inf(1)
				}
				c += net.Converter(v).Cost(prev, h.Wavelength)
			}
		}
	}
	return c
}

// Cost verifies that the reported Eq. 1 cost of p matches the
// first-principles recomputation within eps (absolute + relative).
func Cost(net *wdm.Network, p *wdm.Semilightpath, reported float64) error {
	want := PathCost(net, p)
	if !approxEq(want, reported) {
		return fmt.Errorf("check: reported cost %g, Eq. 1 recomputation gives %g", reported, want)
	}
	return nil
}

// EdgeDisjoint verifies that p and q share no physical link (§3,
// edge-disjointness of primary and backup).
func EdgeDisjoint(p, q *wdm.Semilightpath) error {
	seen := make(map[int]bool, len(p.Hops))
	for _, h := range p.Hops {
		seen[h.Link] = true
	}
	for _, h := range q.Hops {
		if seen[h.Link] {
			return fmt.Errorf("check: paths share link %d", h.Link)
		}
	}
	return nil
}

// NodeDisjoint verifies that p and q share no intermediate node (the
// stronger protection discipline of ApproxMinCostNodeDisjoint); the shared
// endpoints s and t are exempt.
func NodeDisjoint(net *wdm.Network, p, q *wdm.Semilightpath, s, t int) error {
	seen := map[int]bool{}
	for _, v := range p.Nodes(net) {
		if v != s && v != t {
			seen[v] = true
		}
	}
	for _, v := range q.Nodes(net) {
		if v != s && v != t && seen[v] {
			return fmt.Errorf("check: paths share intermediate node %d", v)
		}
	}
	return nil
}

// PairLoad recomputes max over the links of the given paths of (U(e)+1)/N(e)
// — the network-load contribution the pair would have if established on the
// current residual state (the Result.PathLoad bookkeeping).
func PairLoad(net *wdm.Network, paths ...*wdm.Semilightpath) float64 {
	rho := 0.0
	for _, p := range paths {
		for _, h := range p.Hops {
			l := net.Link(h.Link)
			if r := float64(l.U()+1) / float64(l.N()); r > rho {
				rho = r
			}
		}
	}
	return rho
}

// LoadAccounting audits the residual-state bookkeeping of the whole network:
// on every link Λ_avail(e) ⊆ Λ(e), the derived U(e) and ρ(e) agree with the
// set cardinalities, per-link loads lie in [0, 1], and NetworkLoad equals
// the recomputed maximum (Eq. 2).
func LoadAccounting(net *wdm.Network) error {
	maxLoad := 0.0
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		subset := true
		avail := 0
		l.Avail().ForEach(func(lam int) bool {
			avail++
			if !l.Lambda().Contains(lam) {
				subset = false
				return false
			}
			return true
		})
		if !subset {
			return fmt.Errorf("check: link %d: Λ_avail ⊄ Λ", id)
		}
		n := l.Lambda().Count()
		if got := l.N(); got != n {
			return fmt.Errorf("check: link %d: N() = %d, |Λ| = %d", id, got, n)
		}
		if got := l.U(); got != n-avail {
			return fmt.Errorf("check: link %d: U() = %d, |Λ|−|Λ_avail| = %d", id, got, n-avail)
		}
		load := 1.0
		if n > 0 {
			load = float64(n-avail) / float64(n)
		}
		if got := l.Load(); math.Abs(got-load) > 1e-12 {
			return fmt.Errorf("check: link %d: Load() = %g, recomputed ρ = %g", id, got, load)
		}
		if load < 0 || load > 1 {
			return fmt.Errorf("check: link %d: ρ = %g outside [0,1]", id, load)
		}
		if n > 0 && load > maxLoad {
			maxLoad = load
		}
	}
	if got := net.NetworkLoad(); math.Abs(got-maxLoad) > 1e-12 {
		return fmt.Errorf("check: NetworkLoad() = %g, recomputed max ρ = %g", got, maxLoad)
	}
	return nil
}

// GraphPath verifies that path (a sequence of edge IDs) is a connected walk
// from s to t in g using no disabled edge.
func GraphPath(g *graph.Graph, path []int, s, t int) error {
	if len(path) == 0 {
		return fmt.Errorf("check: empty path")
	}
	at := s
	for i, id := range path {
		if id < 0 || id >= g.M() {
			return fmt.Errorf("check: hop %d: edge %d out of range [0,%d)", i, id, g.M())
		}
		if g.Disabled(id) {
			return fmt.Errorf("check: hop %d: edge %d is disabled", i, id)
		}
		e := g.Edge(id)
		if e.From != at {
			return fmt.Errorf("check: hop %d: edge %d leaves node %d, walk is at %d", i, id, e.From, at)
		}
		at = e.To
	}
	if at != t {
		return fmt.Errorf("check: path ends at node %d, want %d", at, t)
	}
	return nil
}

// GraphPairDisjoint verifies that two edge-ID paths share no edge.
func GraphPairDisjoint(p1, p2 []int) error {
	seen := make(map[int]bool, len(p1))
	for _, id := range p1 {
		seen[id] = true
	}
	for _, id := range p2 {
		if seen[id] {
			return fmt.Errorf("check: paths share edge %d", id)
		}
	}
	return nil
}

// GraphPair verifies a disjoint-pair result on a plain weighted graph: both
// paths valid s→t walks, edge-disjointness, and the reported weight equal to
// the recomputed sum of edge weights.
func GraphPair(g *graph.Graph, p1, p2 []int, s, t int, weight float64) error {
	if err := GraphPath(g, p1, s, t); err != nil {
		return fmt.Errorf("path1: %w", err)
	}
	if err := GraphPath(g, p2, s, t); err != nil {
		return fmt.Errorf("path2: %w", err)
	}
	if err := GraphPairDisjoint(p1, p2); err != nil {
		return err
	}
	sum := 0.0
	for _, id := range p1 {
		sum += g.Edge(id).Weight
	}
	for _, id := range p2 {
		sum += g.Edge(id).Weight
	}
	if !approxEq(sum, weight) {
		return fmt.Errorf("check: reported pair weight %g, recomputed %g", weight, sum)
	}
	return nil
}

// approxEq compares floats with a mixed absolute/relative tolerance. Both
// infinite (same sign) compares equal.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}
