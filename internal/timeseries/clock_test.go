package timeseries

import (
	"sync"
	"testing"
	"time"
)

func TestSimClockMonotonic(t *testing.T) {
	c := NewSimClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %g", c.Now())
	}
	c.Advance(3.5)
	if c.Now() != 3.5 {
		t.Fatalf("Now = %g after Advance(3.5)", c.Now())
	}
	// The event queue can pop ties slightly out of order; the clock must
	// never run backwards.
	c.Advance(2)
	if c.Now() != 3.5 {
		t.Fatalf("clock went backwards to %g", c.Now())
	}
	c.Advance(3.5)
	if c.Now() != 3.5 {
		t.Fatal("idempotent advance changed the clock")
	}
}

func TestSimClockConcurrentAdvance(t *testing.T) {
	c := NewSimClock()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(float64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if c.Now() != 3999 {
		t.Fatalf("Now = %g, want the maximum advanced value 3999", c.Now())
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	if a < 0 {
		t.Fatalf("wall clock negative: %g", a)
	}
	time.Sleep(5 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %g -> %g", a, b)
	}
}
