package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/wdm"
	"repro/internal/workload"
)

func nsf(w int) *wdm.Network { return topo.NSFNET(topo.Config{W: w}) }

func poisson(n, count int, erlang float64, seed int64) []workload.Request {
	return workload.Poisson(workload.PoissonConfig{
		Nodes: n, ArrivalRate: erlang, MeanHolding: 1, Count: count, Seed: seed,
	})
}

func TestRunNoFailuresConservesWavelengths(t *testing.T) {
	net := nsf(8)
	total := net.TotalAvailable()
	sim := New(net, Config{Algorithm: MinCost, Restoration: Active, Seed: 1})
	reqs := poisson(14, 300, 20, 2)
	m := sim.Run(reqs)
	if m.Offered != 300 || m.Accepted+m.Blocked != 300 {
		t.Fatalf("accounting broken: %+v", m)
	}
	// All holding times finite: every connection departs, so the network
	// must return to the fully idle state.
	if sim.LiveConnections() != 0 {
		t.Fatalf("%d connections leaked", sim.LiveConnections())
	}
	if sim.Network().TotalAvailable() != total {
		t.Fatal("wavelengths leaked")
	}
	if m.Horizon <= 0 {
		t.Fatal("horizon not recorded")
	}
	if m.Accepted > 0 && m.Cost.N() != m.Accepted {
		t.Fatal("cost samples != accepted")
	}
}

func TestOriginalNetworkUntouched(t *testing.T) {
	net := nsf(4)
	sim := New(net, Config{Algorithm: MinCost, Restoration: Active})
	sim.Run(poisson(14, 100, 30, 3))
	if net.NetworkLoad() != 0 {
		t.Fatal("simulator mutated the caller's network")
	}
}

func TestBlockingIncreasesWithLoad(t *testing.T) {
	light := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active}).
		Run(poisson(14, 400, 5, 7))
	heavy := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active}).
		Run(poisson(14, 400, 60, 7))
	if light.BlockingProbability() > heavy.BlockingProbability() {
		t.Fatalf("blocking: light %g > heavy %g",
			light.BlockingProbability(), heavy.BlockingProbability())
	}
	if heavy.BlockingProbability() == 0 {
		t.Fatal("heavy load should block some requests")
	}
}

func TestActiveRestorationRecoversInstantly(t *testing.T) {
	net := nsf(8)
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 0.5, RepairTime: 2, Seed: 5,
	}
	m := New(net, cfg).Run(poisson(14, 400, 15, 11))
	if m.FailureEvents == 0 {
		t.Fatal("no failures injected")
	}
	if m.AffectedConns == 0 {
		t.Skip("no connection happened to cross a failed link (seed-dependent)")
	}
	if m.Recovered+m.RecoveryFailed != m.AffectedConns {
		t.Fatalf("recovery accounting: %+v", m)
	}
	// Active switchover signals zero new links.
	if m.RecoveryWork.N() > 0 && m.RecoveryWork.Max() != 0 {
		t.Fatalf("active recovery work = %g, want 0", m.RecoveryWork.Max())
	}
}

func TestPassiveRestorationPaysSignalling(t *testing.T) {
	net := nsf(8)
	cfg := Config{
		Algorithm: MinCost, Restoration: Passive,
		FailureRate: 0.5, RepairTime: 2, Seed: 5,
	}
	m := New(net, cfg).Run(poisson(14, 400, 15, 11))
	if m.FailureEvents == 0 {
		t.Fatal("no failures injected")
	}
	if m.Recovered > 0 && m.RecoveryWork.Mean() == 0 {
		t.Fatal("passive recovery should signal new links")
	}
}

func TestPassiveAcceptsMoreUnderPressure(t *testing.T) {
	// Without failures, passive reserves one path per request instead of
	// two, so under capacity pressure it blocks less.
	reqs := poisson(14, 500, 60, 11)
	passive := New(nsf(4), Config{Algorithm: MinCost, Restoration: Passive}).Run(reqs)
	active := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active}).Run(reqs)
	if passive.Accepted < active.Accepted {
		t.Fatalf("passive accepted %d < active %d", passive.Accepted, active.Accepted)
	}
}

func TestActiveBeatsPassiveOnRecoveryRate(t *testing.T) {
	// Under heavy load with failures, passive restoration should fail more
	// often (resource shortage at recovery time) — the §1 claim.
	var activeFailRate, passiveFailRate float64
	runs := 5
	for seed := int64(0); seed < int64(runs); seed++ {
		reqs := poisson(14, 500, 40, 100+seed)
		cfgA := Config{Algorithm: MinCost, Restoration: Active,
			FailureRate: 1, RepairTime: 3, Seed: 200 + seed}
		cfgP := cfgA
		cfgP.Restoration = Passive
		ma := New(nsf(4), cfgA).Run(reqs)
		mp := New(nsf(4), cfgP).Run(reqs)
		if ma.AffectedConns > 0 {
			activeFailRate += float64(ma.RecoveryFailed) / float64(ma.AffectedConns)
		}
		if mp.AffectedConns > 0 {
			passiveFailRate += float64(mp.RecoveryFailed) / float64(mp.AffectedConns)
		}
	}
	if activeFailRate > passiveFailRate {
		t.Fatalf("active recovery-failure rate %g > passive %g",
			activeFailRate, passiveFailRate)
	}
}

func TestWavelengthConservationWithFailures(t *testing.T) {
	net := nsf(4)
	total := net.TotalAvailable()
	cfg := Config{
		Algorithm: MinLoadCost, Restoration: Active,
		FailureRate: 1, RepairTime: 1.5, Seed: 9,
		ReconfigThreshold: 0.5, ReconfigCooldown: 0.5,
	}
	sim := New(net, cfg)
	m := sim.Run(poisson(14, 600, 30, 13))
	if sim.LiveConnections() != 0 {
		t.Fatalf("%d connections leaked", sim.LiveConnections())
	}
	if got := sim.Network().TotalAvailable(); got != total {
		t.Fatalf("wavelength leak: %d != %d (failures=%d reconfigs=%d)",
			got, total, m.FailureEvents, m.Reconfigs)
	}
}

func TestReconfigurationAccounting(t *testing.T) {
	// Small ring under heavy load crosses any threshold quickly.
	net := topo.Ring(6, topo.Config{W: 4})
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		ReconfigThreshold: 0.4, ReconfigCooldown: 0.1,
	}
	m := New(net, cfg).Run(poisson(6, 300, 20, 17))
	if m.Reconfigs == 0 {
		t.Fatal("no reconfigurations triggered under heavy load")
	}
	if m.MaxNetworkLoad < cfg.ReconfigThreshold {
		t.Fatal("max load below threshold yet reconfigs fired")
	}
	// Disabled accounting stays at zero.
	m2 := New(topo.Ring(6, topo.Config{W: 4}), Config{
		Algorithm: MinCost, Restoration: Active,
	}).Run(poisson(6, 300, 20, 17))
	if m2.Reconfigs != 0 {
		t.Fatal("reconfigs counted while disabled")
	}
}

func TestLoadAwareReducesReconfigurations(t *testing.T) {
	// The paper's headline claim (E4 in miniature): MinLoadCost keeps ρ
	// lower, so it triggers fewer reconfigurations than cost-only routing.
	sumCost, sumAware := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		reqs := poisson(14, 500, 10, 300+seed)
		base := Config{Restoration: Active, ReconfigThreshold: 0.6, ReconfigCooldown: 0.2}
		cfgC := base
		cfgC.Algorithm = MinCost
		cfgA := base
		cfgA.Algorithm = MinLoadCost
		sumCost += New(nsf(8), cfgC).Run(reqs).Reconfigs
		sumAware += New(nsf(8), cfgA).Run(reqs).Reconfigs
	}
	if sumAware > sumCost {
		t.Fatalf("load-aware reconfigs %d > cost-only %d", sumAware, sumCost)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{}
	if m.BlockingProbability() != 0 || m.MeanLoad() != 0 {
		t.Fatal("zero-value metrics should report 0")
	}
	m.Offered, m.Blocked = 4, 1
	if m.BlockingProbability() != 0.25 {
		t.Fatal("blocking probability wrong")
	}
	m.LoadIntegral, m.Horizon = 5, 10
	if m.MeanLoad() != 0.5 {
		t.Fatal("mean load wrong")
	}
}

func TestAlgorithmAndRestorationStrings(t *testing.T) {
	for a, want := range map[Algorithm]string{
		MinCost: "min-cost", MinLoad: "min-load",
		MinLoadCost: "min-load-cost", TwoStep: "two-step",
		Algorithm(9): "Algorithm(9)",
	} {
		if a.String() != want {
			t.Errorf("Algorithm.String = %q, want %q", a.String(), want)
		}
	}
	if Active.String() != "active" || Passive.String() != "passive" {
		t.Fatal("Restoration strings wrong")
	}
}

func TestAllAlgorithmsRunClean(t *testing.T) {
	for _, algo := range []Algorithm{MinCost, MinLoad, MinLoadCost, TwoStep} {
		net := nsf(4)
		total := net.TotalAvailable()
		sim := New(net, Config{Algorithm: algo, Restoration: Active})
		m := sim.Run(poisson(14, 150, 15, 23))
		if m.Accepted == 0 {
			t.Errorf("%v accepted nothing", algo)
		}
		if sim.Network().TotalAvailable() != total {
			t.Errorf("%v leaked wavelengths", algo)
		}
	}
}

func TestInfiniteHoldingConnectionsPersist(t *testing.T) {
	net := nsf(8)
	sim := New(net, Config{Algorithm: MinCost, Restoration: Active})
	m := sim.Run(workload.Batch(14, 10, 31))
	if m.Accepted == 0 {
		t.Fatal("batch requests all blocked")
	}
	if sim.LiveConnections() != m.Accepted {
		t.Fatalf("live = %d, accepted = %d", sim.LiveConnections(), m.Accepted)
	}
	if sim.Network().NetworkLoad() == 0 {
		t.Fatal("permanent connections should hold capacity")
	}
	if !math.IsInf(workload.Batch(14, 1, 1)[0].Holding, 1) {
		t.Fatal("batch holding should be infinite")
	}
}

func TestReprotectRestoresBackup(t *testing.T) {
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 1, RepairTime: 2, Seed: 5,
		Reprotect: true,
	}
	net := nsf(8)
	total := net.TotalAvailable()
	sim := New(net, cfg)
	m := sim.Run(poisson(14, 500, 15, 11))
	if m.FailureEvents == 0 {
		t.Fatal("no failures injected")
	}
	if m.ReprotectOK == 0 {
		t.Skip("no reprotection opportunity at this seed")
	}
	if sim.Network().TotalAvailable() != total {
		t.Fatal("reprotect leaked wavelengths")
	}
	// Without reprotection the counters stay zero.
	cfg.Reprotect = false
	m2 := New(nsf(8), cfg).Run(poisson(14, 500, 15, 11))
	if m2.ReprotectOK != 0 || m2.ReprotectFailed != 0 {
		t.Fatal("reprotect counters moved while disabled")
	}
}

func TestReprotectImprovesSurvival(t *testing.T) {
	// With frequent failures, reprotected connections survive later hits
	// more often: recovery-failure count should not increase.
	var lost, lostRe int
	for seed := int64(0); seed < 4; seed++ {
		reqs := poisson(14, 400, 15, 700+seed)
		base := Config{Algorithm: MinCost, Restoration: Active,
			FailureRate: 2, RepairTime: 5, Seed: 900 + seed}
		withRe := base
		withRe.Reprotect = true
		lost += New(nsf(8), base).Run(reqs).RecoveryFailed
		lostRe += New(nsf(8), withRe).Run(reqs).RecoveryFailed
	}
	if lostRe > lost {
		t.Fatalf("reprotect lost more connections: %d > %d", lostRe, lost)
	}
}

func TestRouteFuncOverride(t *testing.T) {
	net := nsf(4)
	tbl := core.BuildAlternateTable(net, 2, nil)
	calls := 0
	sim := New(net, Config{
		Algorithm:   MinCost,
		Restoration: Active,
		RouteFunc: func(n *wdm.Network, s, d int) (*core.Result, bool) {
			calls++
			return tbl.Route(n, s, d)
		},
	})
	m := sim.Run(poisson(14, 100, 10, 41))
	if calls != m.Offered {
		t.Fatalf("RouteFunc called %d times, offered %d", calls, m.Offered)
	}
	if m.Accepted == 0 {
		t.Fatal("table routing accepted nothing")
	}
	if sim.Network().TotalAvailable() != nsf(4).TotalAvailable() {
		t.Fatal("wavelengths leaked under RouteFunc")
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	var buf trace.Buffer
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 1, RepairTime: 2, Seed: 5,
		ReconfigThreshold: 0.5, ReconfigCooldown: 0.2,
		Trace: &buf,
	}
	m := New(nsf(4), cfg).Run(poisson(14, 300, 25, 11))
	if buf.Count(trace.Arrival) != m.Offered {
		t.Fatalf("arrival events %d != offered %d", buf.Count(trace.Arrival), m.Offered)
	}
	if buf.Count(trace.Accept) != m.Accepted {
		t.Fatalf("accept events %d != accepted %d", buf.Count(trace.Accept), m.Accepted)
	}
	if buf.Count(trace.Block) != m.Blocked {
		t.Fatalf("block events %d != blocked %d", buf.Count(trace.Block), m.Blocked)
	}
	if buf.Count(trace.Failure) != m.FailureEvents {
		t.Fatalf("failure events %d != %d", buf.Count(trace.Failure), m.FailureEvents)
	}
	if buf.Count(trace.Switchover)+buf.Count(trace.Reroute) < m.Recovered {
		t.Fatal("recovery events undercounted")
	}
	if buf.Count(trace.Reconfig) != m.Reconfigs {
		t.Fatalf("reconfig events %d != %d", buf.Count(trace.Reconfig), m.Reconfigs)
	}
	if buf.Count(trace.Drop) != m.RecoveryFailed {
		t.Fatalf("drop events %d != %d", buf.Count(trace.Drop), m.RecoveryFailed)
	}
	// Time stamps are non-decreasing.
	prev := -1.0
	for _, e := range buf.Events() {
		if e.Time < prev-1e-9 {
			t.Fatal("trace timestamps not monotone")
		}
		prev = e.Time
	}
}

func TestEmitNilRecorderSafe(t *testing.T) {
	// Config.Trace left nil: every emit call site must be a no-op, and a
	// full run (arrivals, departures, failures, reconfigs) must not panic.
	sim := New(nsf(4), Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 1, RepairTime: 2, Seed: 5,
		ReconfigThreshold: 0.5, ReconfigCooldown: 0.2,
	})
	sim.emit(trace.Arrival, 1, -1, -1, "direct call") // the guard itself
	m := sim.Run(poisson(14, 200, 25, 11))
	if m.Offered != 200 {
		t.Fatalf("offered = %d", m.Offered)
	}
	if err := sim.TraceErr(); err != nil {
		t.Fatalf("TraceErr = %v with no recorder", err)
	}
}

// errAfter fails every Record after the first n successes.
type errAfter struct {
	n   int
	err error
}

func (r *errAfter) Record(trace.Event) error {
	if r.n > 0 {
		r.n--
		return nil
	}
	return r.err
}

func TestTraceErrCapturesFirstFailure(t *testing.T) {
	sinkErr := errors.New("sink gone")
	sim := New(nsf(4), Config{
		Algorithm: MinCost, Restoration: Active, Seed: 1,
		Trace: &errAfter{n: 10, err: sinkErr},
	})
	m := sim.Run(poisson(14, 100, 10, 2))
	if m.Offered != 100 {
		t.Fatal("trace failure aborted the simulation")
	}
	if !errors.Is(sim.TraceErr(), sinkErr) {
		t.Fatalf("TraceErr = %v, want %v", sim.TraceErr(), sinkErr)
	}
}

func TestDeterministicFailureTargets(t *testing.T) {
	net := nsf(8)
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 0.5, RepairTime: 100, Seed: 1,
		FailureLinks: []int{3, 7},
	}
	var buf trace.Buffer
	cfg.Trace = &buf
	New(net, cfg).Run(poisson(14, 200, 10, 3))
	for _, e := range buf.Events() {
		if e.Kind == trace.Failure && e.Link != 3 && e.Link != 7 {
			t.Fatalf("failure hit untargeted link %d", e.Link)
		}
	}
	if buf.Count(trace.Failure) == 0 {
		t.Fatal("no failures fired")
	}
}

// Forces the reconfiguration reroute-failure path (rereserve): a connection
// loses its backup to a targeted failure; the subsequent reconfiguration
// tears it down, MinLoad cannot find a disjoint pair (one corridor is
// quarantined), and the old primary must be re-reserved intact.
func TestReconfigRerouteFailureRestoresOldPaths(t *testing.T) {
	// Two corridors 0→1→3 and 0→2→3, W=2. The connection holds one λ per
	// link (load 0.5 < threshold 0.8). The targeted failure quarantines
	// link 2 (load 1 ≥ 0.8) — an upward crossing — and the triggered
	// reconfiguration picks the most loaded *up* link (a primary link),
	// tears the connection, and cannot re-route it (corridor 2 is down),
	// so the old paths must be re-reserved.
	mk := func() *wdm.Network {
		net := wdm.NewNetwork(4, 2)
		net.AddUniformLink(0, 1, 1)   // 0: cheap corridor → primary
		net.AddUniformLink(1, 3, 1)   // 1
		net.AddUniformLink(0, 2, 1.5) // 2: dear corridor → backup
		net.AddUniformLink(2, 3, 1.5) // 3
		net.SetAllConverters(wdm.NewFullConverter(2, 0))
		return net
	}
	net := mk()
	var buf trace.Buffer
	cfg := Config{
		Algorithm: MinCost, Restoration: Active,
		FailureRate: 5, RepairTime: 1000, Seed: 1,
		FailureLinks:      []int{2}, // kill the 0→2 corridor's first link
		ReconfigThreshold: 0.8, ReconfigCooldown: 0.01,
		Trace: &buf,
	}
	sim := New(net, cfg)
	// One permanent connection 0→3 occupying both corridors.
	reqs := []workload.Request{{ID: 0, Src: 0, Dst: 3, Arrival: 0.001, Holding: math.Inf(1)}}
	// Plus a dummy late arrival so the event loop runs past the failure.
	reqs = append(reqs, workload.Request{ID: 1, Src: 0, Dst: 3, Arrival: 50, Holding: 1})
	m := sim.Run(reqs)
	if m.Accepted < 1 {
		t.Fatal("connection not established")
	}
	if buf.Count(trace.Failure) == 0 {
		t.Fatal("failure never fired")
	}
	if m.BackupLost == 0 {
		t.Fatal("backup was not degraded by the targeted failure")
	}
	// The connection must still be alive on its original primary: exactly
	// one live connection, primary corridor channels in use.
	if sim.LiveConnections() != 1 {
		t.Fatalf("live = %d, want 1", sim.LiveConnections())
	}
	// Reconfig fired (load stayed ≥ threshold) but could not reroute.
	if m.Reconfigs == 0 {
		t.Fatal("reconfiguration never fired")
	}
	if m.ReroutedConns != 0 {
		t.Fatalf("reroute should have failed, yet %d rerouted", m.ReroutedConns)
	}
}

func TestWarmupExcludesTransient(t *testing.T) {
	reqs := poisson(14, 200, 20, 51)
	warm := New(nsf(8), Config{Algorithm: MinCost, Restoration: Active, WarmupRequests: 80}).Run(reqs)
	if warm.Offered != 120 {
		t.Fatalf("offered = %d, want 120", warm.Offered)
	}
	if warm.Accepted+warm.Blocked != 120 {
		t.Fatal("warm accounting inconsistent")
	}
	if warm.Cost.N() != warm.Accepted {
		t.Fatal("cost stream counted warm-up requests")
	}
	// Warm-up requests still occupy the network: the measured blocking under
	// warm-up is at least the cold-start blocking on the same stream.
	cold := New(nsf(8), Config{Algorithm: MinCost, Restoration: Active}).Run(reqs)
	if cold.Offered != 200 {
		t.Fatal("cold offered wrong")
	}
	if warm.BlockingProbability()+1e-9 < cold.BlockingProbability()*0.5 {
		// Weak sanity only: the warm measurement reflects steady state.
		t.Logf("warm=%g cold=%g", warm.BlockingProbability(), cold.BlockingProbability())
	}
}

func TestAvailabilityAccounting(t *testing.T) {
	// Without failures every departing connection is fully served.
	m := New(nsf(8), Config{Algorithm: MinCost, Restoration: Active}).
		Run(poisson(14, 200, 10, 61))
	if m.Availability.N() != m.Accepted {
		t.Fatalf("availability samples %d != accepted %d", m.Availability.N(), m.Accepted)
	}
	if m.Availability.Mean() != 1 {
		t.Fatalf("availability = %g, want 1", m.Availability.Mean())
	}
	// Under heavy failures with passive restoration some connections drop
	// early, pulling mean availability below 1.
	mp := New(nsf(4), Config{
		Algorithm: MinCost, Restoration: Passive,
		FailureRate: 3, RepairTime: 5, Seed: 3,
	}).Run(poisson(14, 500, 40, 62))
	if mp.RecoveryFailed > 0 && mp.Availability.Mean() >= 1 {
		t.Fatalf("drops occurred yet availability = %g", mp.Availability.Mean())
	}
	if mp.Availability.Min() < 0 || mp.Availability.Max() > 1 {
		t.Fatal("availability outside [0,1]")
	}
}

// Property: for arbitrary seeds/configs the simulator conserves wavelengths
// and keeps its counters consistent.
func TestQuickSimulatorConservation(t *testing.T) {
	f := func(seed int64, erlRaw, failRaw uint8) bool {
		erl := 5 + float64(erlRaw%40)
		failRate := float64(failRaw%3) * 0.7
		net := nsf(4)
		total := net.TotalAvailable()
		sim := New(net, Config{
			Algorithm:         Algorithm(int(seed) & 3),
			Restoration:       Restoration(int(seed>>2) & 1),
			FailureRate:       failRate,
			RepairTime:        1.5,
			Seed:              seed,
			ReconfigThreshold: 0.5,
			ReconfigCooldown:  0.3,
			Reprotect:         seed%2 == 0,
		})
		m := sim.Run(poisson(14, 150, erl, seed+1))
		if m.Accepted+m.Blocked != m.Offered {
			return false
		}
		if m.Recovered+m.RecoveryFailed != m.AffectedConns {
			return false
		}
		if sim.LiveConnections() != 0 {
			return false
		}
		return sim.Network().TotalAvailable() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
