package topofile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/wdm"
)

const sample = `{
  "nodes": 4,
  "wavelengths": 2,
  "converter": {"kind": "full", "cost": 0.5},
  "links": [
    {"from": 0, "to": 1, "cost": 1.0, "bidir": true},
    {"from": 1, "to": 2, "cost": 2.0},
    {"from": 2, "to": 3, "wavelengths": [0], "costs": [2.5]},
    {"from": 0, "to": 3, "cost": 9}
  ]
}`

func TestDecodeSample(t *testing.T) {
	net, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if net.Nodes() != 4 || net.W() != 2 {
		t.Fatalf("dims: %d nodes, W=%d", net.Nodes(), net.W())
	}
	// bidir pair + 3 single links = 5 directed links.
	if net.Links() != 5 {
		t.Fatalf("links = %d, want 5", net.Links())
	}
	// Partial installation respected.
	var partial *wdm.Link
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.From == 2 && l.To == 3 {
			partial = l
		}
	}
	if partial == nil || partial.N() != 1 || partial.Cost(0) != 2.5 {
		t.Fatalf("partial link wrong: %+v", partial)
	}
	if !math.IsInf(partial.Cost(1), 1) {
		t.Fatal("uninstalled wavelength should cost +Inf")
	}
	if got := net.ConvCost(0, 0, 1); got != 0.5 {
		t.Fatalf("conversion cost = %g", got)
	}
	// The decoded network is routable end to end.
	if _, ok := core.ApproxMinCost(net, 0, 3, nil); !ok {
		t.Fatal("decoded network should route 0→3 robustly")
	}
}

func TestConverterKinds(t *testing.T) {
	mk := func(conv string) (*wdm.Network, error) {
		return Decode(strings.NewReader(`{
			"nodes": 2, "wavelengths": 3,
			"converter": ` + conv + `,
			"links": [{"from": 0, "to": 1, "cost": 1}]
		}`))
	}
	if net, err := mk(`{"kind": "none"}`); err != nil || net.Converter(0).Allowed(0, 1) {
		t.Fatalf("none converter: %v", err)
	}
	if net, err := mk(`{"kind": "range", "range": 1, "cost": 2}`); err != nil ||
		net.Converter(0).Allowed(0, 2) || !net.Converter(0).Allowed(0, 1) {
		t.Fatalf("range converter: %v", err)
	}
	if net, err := mk(`{}`); err != nil || !net.Converter(0).Allowed(0, 2) {
		t.Fatalf("default converter should be full: %v", err)
	}
	if _, err := mk(`{"kind": "quantum"}`); err == nil {
		t.Fatal("unknown converter accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"badJSON":      `{`,
		"unknownField": `{"nodes": 2, "wavelengths": 1, "zap": 1, "links": []}`,
		"noNodes":      `{"nodes": 0, "wavelengths": 1, "links": []}`,
		"noW":          `{"nodes": 2, "wavelengths": 0, "links": []}`,
		"linkRange":    `{"nodes": 2, "wavelengths": 1, "links": [{"from": 0, "to": 5, "cost": 1}]}`,
		"selfLoop":     `{"nodes": 2, "wavelengths": 1, "links": [{"from": 1, "to": 1, "cost": 1}]}`,
		"zeroCost":     `{"nodes": 2, "wavelengths": 1, "links": [{"from": 0, "to": 1}]}`,
		"lenMismatch":  `{"nodes": 2, "wavelengths": 2, "links": [{"from": 0, "to": 1, "wavelengths": [0, 1], "costs": [1]}]}`,
		"lamRange":     `{"nodes": 2, "wavelengths": 2, "links": [{"from": 0, "to": 1, "wavelengths": [5], "costs": [1]}]}`,
		"negCost":      `{"nodes": 2, "wavelengths": 2, "links": [{"from": 0, "to": 1, "wavelengths": [0], "costs": [-1]}]}`,
		"negConv":      `{"nodes": 2, "wavelengths": 1, "converter": {"cost": -1}, "links": []}`,
	}
	for name, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := topo.NSFNET(topo.Config{W: 4})
	f := Describe(orig, ConverterSpec{Kind: "full", Cost: 0.5})
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes() != orig.Nodes() || back.Links() != orig.Links() || back.W() != orig.W() {
		t.Fatal("round trip changed dimensions")
	}
	for id := 0; id < orig.Links(); id++ {
		lo, lb := orig.Link(id), back.Link(id)
		if lo.From != lb.From || lo.To != lb.To || lo.N() != lb.N() {
			t.Fatalf("link %d mismatch", id)
		}
		lo.Lambda().ForEach(func(lam int) bool {
			if lo.Cost(lam) != lb.Cost(lam) {
				t.Fatalf("link %d λ%d cost mismatch", id, lam)
			}
			return true
		})
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	f := Describe(topo.Ring(5, topo.Config{W: 2}), ConverterSpec{Kind: "full", Cost: 0.5})
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	net, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if net.Nodes() != 5 || net.Links() != 10 {
		t.Fatal("loaded network wrong")
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Fatal("missing file should error")
	}
}
