package slo

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/timeseries"
)

// harness is a collector on a SimClock plus a watchdog — burn-rate windows
// advance deterministically, no wall clock anywhere.
type harness struct {
	clock *timeseries.SimClock
	col   *timeseries.Collector
	lat   *timeseries.Histogram
	block *timeseries.Ratio
	confl *timeseries.Rate
	epoch *timeseries.Rate
	wd    *Watchdog
	t     float64 // current sim time
}

func newHarness(t *testing.T, objs ...Objective) *harness {
	t.Helper()
	clock := timeseries.NewSimClock()
	col := timeseries.New(timeseries.Config{Window: 1, Clock: clock})
	h := &harness{
		clock: clock,
		col:   col,
		lat:   col.Histogram("lat", nil),
		block: col.Ratio("blocking"),
		confl: col.Rate("conflicts"),
		epoch: col.Rate("epochs"),
	}
	wd, err := New(objs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.wd = wd
	wd.Bind(col)
	return h
}

// window advances one sealed window, first feeding n latency observations of
// value v into it.
func (h *harness) window(n int, v float64) {
	for i := 0; i < n; i++ {
		h.lat.Observe(v)
	}
	h.t++
	h.clock.Advance(h.t)
	h.col.Advance(h.t)
}

func objState1(t *testing.T, wd *Watchdog) ObjectiveStatus {
	t.Helper()
	st := wd.Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("want 1 objective, got %d", len(st.Objectives))
	}
	return st.Objectives[0]
}

func TestValidation(t *testing.T) {
	if _, err := New(Objective{Name: "x", Series: "s", Max: 0}); err == nil {
		t.Fatal("want error for Max = 0")
	}
	if _, err := New(Objective{Name: "x", Max: 1}); err == nil {
		t.Fatal("want error for empty Series")
	}
	if _, err := New(Objective{Series: "s", Max: 1}); err != nil {
		t.Fatalf("name should default to series: %v", err)
	}
}

func TestBreachAndRecovery(t *testing.T) {
	obj := Objective{
		Name: "p99", Series: "lat", Kind: KindP99, Max: 0.1,
		ShortWindows: 2, LongWindows: 4, ShortBurn: 2, LongBurn: 1, WarnBurn: 1,
	}
	h := newHarness(t, obj)
	var breaches []Breach
	h.wd.OnBreach(func(b Breach) { breaches = append(breaches, b) })

	// Healthy traffic: p99 ≈ 0.05, burn 0.5.
	for i := 0; i < 4; i++ {
		h.window(10, 0.05)
	}
	if got := objState1(t, h.wd); got.State != "healthy" {
		t.Fatalf("after healthy windows: state = %s, want healthy", got.State)
	}

	// One hot window is not enough to page (short mean = (5+0.5)/2 = 2.75 ≥ 2
	// but long mean = (5+0.5+0.5+0.5)/4 = 1.625 ≥ 1 — with LongWindows 4 the
	// long mean crosses too, so trim the scenario: check the single-window
	// behaviour against the configured thresholds instead of assuming.
	h.window(10, 0.5) // burn 5
	first := objState1(t, h.wd)
	if first.State == "healthy" {
		t.Fatalf("hot window ignored: %+v", first)
	}

	// Sustained overload must be burning, and must breach exactly once.
	h.window(10, 0.5)
	h.window(10, 0.5)
	got := objState1(t, h.wd)
	if got.State != "burning" {
		t.Fatalf("sustained overload: state = %s, want burning (%+v)", got.State, got)
	}
	if len(breaches) != 1 {
		t.Fatalf("breach callbacks = %d, want exactly 1", len(breaches))
	}
	b := breaches[0]
	if b.Objective != "p99" || b.Series != "lat" || b.Value <= 0.1 {
		t.Fatalf("breach payload: %+v", b)
	}

	// Recovery: cheap windows push both means back under budget.
	for i := 0; i < 6; i++ {
		h.window(10, 0.01)
	}
	got = objState1(t, h.wd)
	if got.State != "healthy" {
		t.Fatalf("after recovery: state = %s, want healthy (%+v)", got.State, got)
	}
	if got.Breaches != 1 {
		t.Fatalf("breaches = %d, want 1 (recovery must not re-count)", got.Breaches)
	}
	if len(breaches) != 1 {
		t.Fatalf("breach callbacks after recovery = %d, want 1", len(breaches))
	}

	// Second overload is a second breach.
	for i := 0; i < 4; i++ {
		h.window(10, 0.5)
	}
	if len(breaches) != 2 {
		t.Fatalf("breach callbacks after relapse = %d, want 2", len(breaches))
	}
}

func TestEmptyWindowsDoNotBurnLatency(t *testing.T) {
	obj := Objective{Name: "p99", Series: "lat", Kind: KindP99, Max: 0.01}
	h := newHarness(t, obj)
	for i := 0; i < 10; i++ {
		h.window(0, 0) // idle: no samples at all
	}
	if got := objState1(t, h.wd); got.State != "healthy" {
		t.Fatalf("idle daemon: state = %s, want healthy", got.State)
	}
}

func TestRatioObjective(t *testing.T) {
	obj := Objective{
		Name: "blocking", Series: "blocking", Kind: KindRatio, Max: 0.1,
		ShortWindows: 2, LongWindows: 3, ShortBurn: 2, LongBurn: 1,
	}
	h := newHarness(t, obj)
	// 50% blocking, burn 5, sustained.
	for i := 0; i < 3; i++ {
		h.block.Observe(true)
		h.block.Observe(false)
		h.window(0, 0)
	}
	if got := objState1(t, h.wd); got.State != "burning" {
		t.Fatalf("state = %s, want burning (%+v)", got.State, got)
	}
}

func TestRateObjective(t *testing.T) {
	obj := Objective{
		Name: "conflicts", Series: "conflicts", Kind: KindRate, Max: 2, // 2 conflicts/s
		ShortWindows: 2, LongWindows: 3, ShortBurn: 2, LongBurn: 1,
	}
	h := newHarness(t, obj)
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ { // 10/s, burn 5
			h.confl.Inc()
		}
		h.window(0, 0)
	}
	if got := objState1(t, h.wd); got.State != "burning" {
		t.Fatalf("state = %s, want burning (%+v)", got.State, got)
	}
}

func TestStalenessObjective(t *testing.T) {
	obj := Objective{
		Name: "epochs", Series: "epochs", Kind: KindStaleness, Max: 1, // 1s without epochs
		ShortWindows: 3, LongWindows: 3, ShortBurn: 2, LongBurn: 1,
	}
	h := newHarness(t, obj)
	// Epochs flowing: healthy.
	for i := 0; i < 3; i++ {
		h.epoch.Inc()
		h.window(0, 0)
	}
	if got := objState1(t, h.wd); got.State != "healthy" {
		t.Fatalf("epochs flowing: state = %s, want healthy", got.State)
	}
	// Committer stops publishing: staleness accumulates 1s per window
	// (burns 1, 2, 3 → short mean 2 at the third empty window).
	h.window(0, 0)
	h.window(0, 0)
	h.window(0, 0)
	got := objState1(t, h.wd)
	if got.State != "burning" {
		t.Fatalf("stale epochs: state = %s, want burning (%+v)", got.State, got)
	}
	if got.Value != 3 {
		t.Fatalf("staleness value = %g, want 3 (seconds)", got.Value)
	}
	// One published epoch resets the accumulator.
	h.epoch.Inc()
	h.window(0, 0)
	if got := objState1(t, h.wd); got.Value != 0 {
		t.Fatalf("staleness after publish = %g, want 0", got.Value)
	}
}

func TestStatusAggregatesWorstState(t *testing.T) {
	h := newHarness(t,
		Objective{Name: "a", Series: "lat", Kind: KindP99, Max: 1e9}, // never burns
		Objective{Name: "b", Series: "blocking", Kind: KindRatio, Max: 0.01,
			ShortWindows: 1, LongWindows: 1, ShortBurn: 1, LongBurn: 1},
	)
	h.block.Observe(true)
	h.window(1, 0.001)
	st := h.wd.Status()
	if st.State != "burning" {
		t.Fatalf("aggregate state = %s, want burning", st.State)
	}
	if st.Windows != 1 {
		t.Fatalf("windows = %d, want 1", st.Windows)
	}
}

func TestEnableMetricsGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	h := newHarness(t, Objective{
		Name: "Req P99!", Series: "lat", Kind: KindP99, Max: 0.1,
		ShortWindows: 1, LongWindows: 1, ShortBurn: 1, LongBurn: 1,
	})
	h.wd.EnableMetrics(reg)
	h.window(5, 1.0) // burn 10 → burning
	g := reg.Gauge("slo_req_p99__state", "")
	if got := g.Value(); got != float64(Burning) {
		t.Fatalf("state gauge = %g, want %g", got, float64(Burning))
	}
}

func TestNilWatchdogSafe(t *testing.T) {
	var w *Watchdog
	w.Bind(nil)
	w.Observe(nil)
	w.OnBreach(nil)
	w.EnableMetrics(nil)
	if st := w.Status(); st.State != "healthy" {
		t.Fatalf("nil watchdog state = %s", st.State)
	}
}
