// Package auxgraph builds the edge-node auxiliary graphs of the paper. All
// three variants share one skeleton — two edge-nodes per surviving physical
// link (u_out^e at the tail, v_in^e at the head), a link edge between them,
// conversion edges v_in^e → v_out^e' inside every node, and the special
// terminals s′ and t″ — and differ only in the link filter and the weight
// assignment:
//
//   - Cost (G′, §3.3.1): link edges weighted by the mean available-wavelength
//     cost Σ_{λ∈Λ_avail(e)} w(e,λ)/|Λ_avail(e)|; conversion edges by the mean
//     conversion cost Σ c_v(λa,λb)/K_v over allowed pairs.
//   - Load (G_c, §4.1): only links with U(e)/N(e) < ϑ survive; link edges get
//     the exponential congestion weight a^{(U(e)+1)/N(e)} − a^{U(e)/N(e)};
//     conversion edges weigh 0.
//   - LoadCost (G_rc, §4.2): the Load filter with cost weights — link edges
//     get Σ_{λ∈Λ_avail(e)} w(e,λ)/N(e), conversion edges the mean conversion
//     cost as in G′.
package auxgraph

import (
	"math"

	"repro/internal/graph"
	"repro/internal/wdm"
)

// Kind selects the auxiliary-graph variant.
type Kind int

const (
	// Cost is G′ of §3.3.1.
	Cost Kind = iota
	// Load is G_c of §4.1.
	Load
	// LoadCost is G_rc of §4.2.
	LoadCost
)

// DefaultBase is the default exponent base a for the Load weights. Any a > 1
// realises the paper's heuristic; larger bases penalise loaded links more
// steeply.
const DefaultBase = 10.0

// Params configures Build.
type Params struct {
	Kind Kind
	// Threshold is ϑ for Load/LoadCost: links with load ≥ ϑ are dropped.
	// Ignored by Cost.
	Threshold float64
	// Base is the exponent base a (> 1) for Load weights; DefaultBase if 0.
	Base float64
	// Filter, when non-nil, replaces the threshold test: a link survives iff
	// it has available wavelengths and Filter returns true. Used by exact
	// load oracles that need a per-link capacity cap.
	Filter func(linkID int) bool
	// NodeDisjoint routes all conversion edges of each intermediate node
	// through a unit-capacity hub gadget, so an edge-disjoint pair on the
	// auxiliary graph maps to an internally node-disjoint pair on the
	// physical network (protection against single node failures, §1). The
	// gadget assumes pairwise conversion feasibility at each node — exact
	// under the §3.3 full-conversion assumption; with restricted converters
	// the refinement step re-checks feasibility.
	NodeDisjoint bool
}

// Aux is a built auxiliary graph together with the bookkeeping needed to map
// paths back to the physical network.
type Aux struct {
	G *graph.Graph
	S int // s′
	T int // t″

	net     *wdm.Network
	outNode []int // outNode[e] = aux vertex of u_out^e, −1 if e filtered out
	inNode  []int // inNode[e] = aux vertex of v_in^e, −1 if e filtered out
}

// Build constructs the auxiliary graph for routing from s to t on the
// residual network. It panics on invalid s/t and never fails otherwise: an
// unroutable request simply yields a graph in which t″ is unreachable.
func Build(net *wdm.Network, s, t int, p Params) *Aux {
	if s < 0 || s >= net.Nodes() || t < 0 || t >= net.Nodes() {
		panic("auxgraph: source/destination out of range")
	}
	defer instr.buildTime.Stop(instr.buildTime.Start())
	base := p.Base
	if base == 0 {
		base = DefaultBase
	}
	if base <= 1 {
		panic("auxgraph: exponent base must exceed 1")
	}

	m := net.Links()
	keep := make([]bool, m)
	for id := 0; id < m; id++ {
		l := net.Link(id)
		if l.Avail().Empty() {
			continue
		}
		if p.Filter != nil {
			if !p.Filter(id) {
				continue
			}
		} else if (p.Kind == Load || p.Kind == LoadCost) && l.Load() >= p.Threshold {
			continue
		}
		keep[id] = true
	}

	a := &Aux{
		net:     net,
		outNode: make([]int, m),
		inNode:  make([]int, m),
	}
	// Vertex layout: for kept link e, out-node 2k, in-node 2k+1 (k = kept
	// index); then s′ and t″.
	nv := 0
	for id := 0; id < m; id++ {
		if keep[id] {
			a.outNode[id] = nv
			a.inNode[id] = nv + 1
			nv += 2
		} else {
			a.outNode[id] = -1
			a.inNode[id] = -1
		}
	}
	a.S = nv
	a.T = nv + 1
	nv += 2
	// Hub gadget vertices for the node-disjoint variant: one in/out pair
	// per intermediate physical node.
	var hubIn, hubOut []int
	if p.NodeDisjoint {
		hubIn = make([]int, net.Nodes())
		hubOut = make([]int, net.Nodes())
		for v := range hubIn {
			if v == s || v == t {
				hubIn[v], hubOut[v] = -1, -1
				continue
			}
			hubIn[v] = nv
			hubOut[v] = nv + 1
			nv += 2
		}
	}
	a.G = graph.New(nv)

	// Link edges u_out^e → v_in^e.
	for id := 0; id < m; id++ {
		if !keep[id] {
			continue
		}
		l := net.Link(id)
		var w float64
		switch p.Kind {
		case Cost:
			w = l.MeanAvailCost()
		case Load:
			n := float64(l.N())
			u := float64(l.U())
			w = math.Pow(base, (u+1)/n) - math.Pow(base, u/n)
		case LoadCost:
			w = l.MeanInstalledCost()
		}
		a.G.AddEdgeAux(a.outNode[id], a.inNode[id], w, id)
	}

	// Conversion edges inside each node: v_in^e → v_out^e' when some
	// available wavelength on e can leave on e'. Under the node-disjoint
	// variant the edges of intermediate nodes are funneled through a
	// unit-capacity hub instead, so edge-disjointness on the auxiliary
	// graph enforces node-disjointness on the physical network.
	for v := 0; v < net.Nodes(); v++ {
		conv := net.Converter(v)
		if p.NodeDisjoint && v != s && v != t {
			anyPair := false
			sum, cnt := 0.0, 0
			for _, ein := range net.In(v) {
				if !keep[ein] {
					continue
				}
				for _, eout := range net.Out(v) {
					if !keep[eout] {
						continue
					}
					if ok, mean := meanConvCost(net, conv, ein, eout); ok {
						anyPair = true
						sum += mean
						cnt++
					}
				}
			}
			if !anyPair {
				continue // node cannot be traversed at all
			}
			var w float64
			if p.Kind == Cost || p.Kind == LoadCost {
				w = sum / float64(cnt)
			}
			a.G.AddEdgeAux(hubIn[v], hubOut[v], w, -1)
			for _, ein := range net.In(v) {
				if keep[ein] {
					a.G.AddEdgeAux(a.inNode[ein], hubIn[v], 0, -1)
				}
			}
			for _, eout := range net.Out(v) {
				if keep[eout] {
					a.G.AddEdgeAux(hubOut[v], a.outNode[eout], 0, -1)
				}
			}
			continue
		}
		for _, ein := range net.In(v) {
			if !keep[ein] {
				continue
			}
			for _, eout := range net.Out(v) {
				if !keep[eout] {
					continue
				}
				ok, mean := meanConvCost(net, conv, ein, eout)
				if !ok {
					continue
				}
				var w float64
				if p.Kind == Cost || p.Kind == LoadCost {
					w = mean
				}
				a.G.AddEdgeAux(a.inNode[ein], a.outNode[eout], w, -1)
			}
		}
	}

	// Terminals.
	for _, e1 := range net.Out(s) {
		if keep[e1] {
			a.G.AddEdgeAux(a.S, a.outNode[e1], 0, -1)
		}
	}
	for _, e2 := range net.In(t) {
		if keep[e2] {
			a.G.AddEdgeAux(a.inNode[e2], a.T, 0, -1)
		}
	}
	instr.builds.Inc()
	instr.vertices.Observe(float64(a.G.N()))
	instr.edges.Observe(float64(a.G.M()))
	return a
}

// meanConvCost returns whether any allowed conversion exists from the
// available wavelengths of ein to those of eout at the shared node, and the
// mean cost Σ c_v(λa, λb)/K_v over the K_v allowed ordered pairs (identity
// pairs count, at cost 0, matching the Theorem 2 accounting).
func meanConvCost(net *wdm.Network, conv wdm.Converter, ein, eout int) (bool, float64) {
	in := net.Link(ein).Avail()
	out := net.Link(eout).Avail()
	k := 0
	sum := 0.0
	in.ForEach(func(la int) bool {
		out.ForEach(func(lb int) bool {
			if la == lb {
				k++
			} else if conv.Allowed(la, lb) {
				k++
				sum += conv.Cost(la, lb)
			}
			return true
		})
		return true
	})
	if k == 0 {
		return false, 0
	}
	return true, sum / float64(k)
}

// Net returns the physical network the aux graph was built from.
func (a *Aux) Net() *wdm.Network { return a.net }

// OutNode returns the aux vertex of u_out^e for link e, or −1 if the link was
// filtered out.
func (a *Aux) OutNode(link int) int { return a.outNode[link] }

// InNode returns the aux vertex of v_in^e for link e, or −1 if filtered.
func (a *Aux) InNode(link int) int { return a.inNode[link] }

// MapPath translates an aux edge-ID path into the ordered physical link IDs
// it traverses (its link edges, in order).
func (a *Aux) MapPath(path []int) []int {
	var links []int
	for _, id := range path {
		if aux := a.G.Edge(id).Aux; aux >= 0 {
			links = append(links, aux)
		}
	}
	return links
}

// LinkSet translates an aux edge-ID path into the set of physical links it
// uses — the induced subgraph G_i of §3.3 in which the Lemma 2 refinement
// searches.
func (a *Aux) LinkSet(path []int) map[int]bool {
	set := make(map[int]bool)
	for _, id := range path {
		if aux := a.G.Edge(id).Aux; aux >= 0 {
			set[aux] = true
		}
	}
	return set
}
