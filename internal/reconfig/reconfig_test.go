package reconfig

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/wdm"
)

// establish places a robust pair with the cost-only router (which piles
// onto hot links) and returns the connection record.
func establish(t *testing.T, net *wdm.Network, id, s, d int) *Connection {
	t.Helper()
	r, ok := core.ApproxMinCost(net, s, d, nil)
	if !ok {
		t.Fatalf("routing (%d,%d) failed", s, d)
	}
	if err := core.Establish(net, r); err != nil {
		t.Fatal(err)
	}
	return &Connection{ID: id, Src: s, Dst: d, Primary: r.Primary, Backup: r.Backup}
}

func totalUsed(net *wdm.Network) int {
	u := 0
	for id := 0; id < net.Links(); id++ {
		u += net.Link(id).U()
	}
	return u
}

func TestOptimizeReducesHotspot(t *testing.T) {
	// Two short corridors plus a long detour; cost-only routing stacks
	// everything on the short corridors, overloading them. Reconfiguration
	// should spread onto the detour.
	net := wdm.NewNetwork(6, 4)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 5, 1)
	net.AddUniformLink(0, 2, 1.1)
	net.AddUniformLink(2, 5, 1.1)
	net.AddUniformLink(0, 3, 4)
	net.AddUniformLink(3, 4, 4)
	net.AddUniformLink(4, 5, 4)
	net.SetAllConverters(wdm.NewFullConverter(4, 0.5))

	var conns []*Connection
	for i := 0; i < 3; i++ {
		conns = append(conns, establish(t, net, i, 0, 5))
	}
	before := net.NetworkLoad()
	usedBefore := totalUsed(net)
	res := Optimize(net, conns, 0, nil)
	if res.LoadBefore != before {
		t.Fatalf("LoadBefore = %g, want %g", res.LoadBefore, before)
	}
	if res.LoadAfter > res.LoadBefore+1e-12 {
		t.Fatalf("optimization increased load: %g → %g", res.LoadBefore, res.LoadAfter)
	}
	// Channel conservation: same number of channels held (pairs may differ
	// in hop count, so compare per-connection reservations instead).
	_ = usedBefore
	for _, c := range conns {
		for _, p := range []*wdm.Semilightpath{c.Primary, c.Backup} {
			for _, h := range p.Hops {
				if net.Link(h.Link).HasAvail(h.Wavelength) {
					t.Fatal("optimizer left a connection's channel unreserved")
				}
			}
		}
	}
	// Everything still releasable.
	for _, c := range conns {
		release(net, c.Primary, c.Backup)
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("channels leaked")
	}
}

func TestOptimizeIdleNetworkNoop(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	res := Optimize(net, nil, 0, nil)
	if res.LoadBefore != 0 || res.LoadAfter != 0 || res.Moves != 0 {
		t.Fatalf("idle optimize did something: %+v", res)
	}
}

func TestOptimizeNeverWorsensRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		net := topo.NSFNET(topo.Config{W: 4})
		var conns []*Connection
		for i := 0; i < 10; i++ {
			s := rng.Intn(14)
			d := rng.Intn(13)
			if d >= s {
				d++
			}
			r, ok := core.ApproxMinCost(net, s, d, nil)
			if !ok || core.Establish(net, r) != nil {
				continue
			}
			conns = append(conns, &Connection{ID: i, Src: s, Dst: d, Primary: r.Primary, Backup: r.Backup})
		}
		used := totalUsed(net)
		res := Optimize(net, conns, 3, nil)
		if res.LoadAfter > res.LoadBefore+1e-12 {
			t.Fatalf("trial %d: load worsened %g → %g", trial, res.LoadBefore, res.LoadAfter)
		}
		// No channels created or destroyed beyond re-routing: every
		// connection still fully reserved, and releasing all restores idle.
		_ = used
		for _, c := range conns {
			release(net, c.Primary, c.Backup)
		}
		if net.NetworkLoad() != 0 {
			t.Fatalf("trial %d: channels leaked", trial)
		}
	}
}

func TestOptimizeCountsMoves(t *testing.T) {
	// Same hotspot network as above; with a forced improvement some
	// connection must move and be counted.
	net := wdm.NewNetwork(6, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 5, 1)
	net.AddUniformLink(0, 2, 1.1)
	net.AddUniformLink(2, 5, 1.1)
	net.AddUniformLink(0, 3, 4)
	net.AddUniformLink(3, 4, 4)
	net.AddUniformLink(4, 5, 4)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	conns := []*Connection{establish(t, net, 0, 0, 5), establish(t, net, 1, 0, 5)}
	res := Optimize(net, conns, 0, nil)
	if res.LoadAfter < res.LoadBefore && res.Moves == 0 {
		t.Fatal("load improved but no move counted")
	}
	if res.Rounds == 0 {
		t.Fatal("rounds not counted")
	}
}
