package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// PackageSpec describes one package to load. Specs for packages that are only
// imported (Analyze false) need just ImportPath and ExportFile; specs to be
// analyzed are typechecked from source and must list their files. Specs must
// be ordered dependencies-first (the order `go list -deps` produces).
type PackageSpec struct {
	ImportPath string
	Dir        string
	Files      []string // absolute paths of the package's .go files
	ExportFile string   // compiled export data, for import resolution
	Analyze    bool     // typecheck from source and run analyzers
}

// Package is one typechecked package ready for analysis.
type Package struct {
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
	Files []*ast.File
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the JSON
// package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// List enumerates the packages matching patterns (relative to dir) together
// with their transitive dependencies, dependencies-first. Packages matching
// the patterns themselves are marked Analyze; dependencies resolve from
// export data only.
func List(dir string, patterns ...string) ([]PackageSpec, error) {
	listed, err := goList(dir, append([]string{"-deps", "-export", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var specs []PackageSpec
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		spec := PackageSpec{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			ExportFile: p.Export,
			Analyze:    !p.DepOnly,
		}
		for _, f := range p.GoFiles {
			spec.Files = append(spec.Files, filepath.Join(p.Dir, f))
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// exportLookup resolves import paths to export data, preferring files named
// by the specs and falling back to one `go list -export` call per unknown
// path (cached). It is the lookup function handed to the gc importer.
type exportLookup struct {
	files map[string]string // import path -> export file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.files[path]
	if !ok {
		listed, err := goList("", "-export", "--", path)
		if err != nil {
			return nil, err
		}
		if len(listed) != 1 || listed[0].Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		file = listed[0].Export
		l.files[path] = file
	}
	return os.Open(file)
}

// chainImporter serves the loader's own typechecked packages first and
// otherwise defers to the export-data importer.
type chainImporter struct {
	own      map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.own[path]; ok {
		return pkg, nil
	}
	return c.fallback.Import(path)
}

// Check parses and typechecks every Analyze spec, in order, resolving imports
// against earlier specs and export data. Syntax and type errors abort the
// load: analyzers only ever see well-typed packages.
func Check(specs []PackageSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	lookup := &exportLookup{files: map[string]string{}}
	for _, s := range specs {
		if s.ExportFile != "" {
			lookup.files[s.ImportPath] = s.ExportFile
		}
	}
	imp := &chainImporter{
		own:      map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "gc", lookup.lookup),
	}
	var out []*Package
	for _, s := range specs {
		if !s.Analyze {
			continue
		}
		var files []*ast.File
		for _, name := range s.Files {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(s.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %v", s.ImportPath, err)
		}
		imp.own[s.ImportPath] = tpkg
		out = append(out, &Package{Types: tpkg, Info: info, Fset: fset, Files: files})
	}
	return out, nil
}

// Load is List followed by Check: the one-call entry point the driver and the
// self-test use.
func Load(dir string, patterns ...string) ([]*Package, error) {
	specs, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Check(specs)
}
