package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonBasics(t *testing.T) {
	c := PoissonConfig{Nodes: 10, ArrivalRate: 2, MeanHolding: 5, Count: 1000, Seed: 1}
	if c.OfferedLoad() != 10 {
		t.Fatalf("OfferedLoad = %g", c.OfferedLoad())
	}
	reqs := Poisson(c)
	if len(reqs) != 1000 {
		t.Fatalf("len = %d", len(reqs))
	}
	prev := 0.0
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("ID[%d] = %d", i, r.ID)
		}
		if r.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = r.Arrival
		if r.Src == r.Dst || r.Src < 0 || r.Src >= 10 || r.Dst < 0 || r.Dst >= 10 {
			t.Fatalf("bad endpoints %d→%d", r.Src, r.Dst)
		}
		if r.Holding <= 0 {
			t.Fatal("non-positive holding")
		}
		if r.Departure() != r.Arrival+r.Holding {
			t.Fatal("Departure mismatch")
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	c := PoissonConfig{Nodes: 5, ArrivalRate: 1, MeanHolding: 1, Count: 50, Seed: 42}
	a := Poisson(c)
	b := Poisson(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c.Seed = 43
	d := Poisson(c)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPoissonRates(t *testing.T) {
	// Empirical mean inter-arrival ≈ 1/λ and mean holding ≈ 1/μ.
	c := PoissonConfig{Nodes: 4, ArrivalRate: 4, MeanHolding: 2.5, Count: 20000, Seed: 9}
	reqs := Poisson(c)
	last := reqs[len(reqs)-1].Arrival
	meanInter := last / float64(len(reqs))
	if math.Abs(meanInter-0.25) > 0.02 {
		t.Fatalf("mean inter-arrival = %g, want ≈ 0.25", meanInter)
	}
	sumH := 0.0
	for _, r := range reqs {
		sumH += r.Holding
	}
	if meanH := sumH / float64(len(reqs)); math.Abs(meanH-2.5) > 0.1 {
		t.Fatalf("mean holding = %g, want ≈ 2.5", meanH)
	}
}

func TestPoissonHotPairs(t *testing.T) {
	c := PoissonConfig{
		Nodes: 10, ArrivalRate: 1, MeanHolding: 1, Count: 5000, Seed: 3,
		HotPairs: []Pair{{Src: 1, Dst: 2}}, HotFraction: 0.5,
	}
	reqs := Poisson(c)
	hot := 0
	for _, r := range reqs {
		if r.Src == 1 && r.Dst == 2 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(reqs))
	if frac < 0.45 || frac > 0.57 {
		t.Fatalf("hot fraction = %g, want ≈ 0.5", frac)
	}
}

func TestPoissonValidation(t *testing.T) {
	for name, c := range map[string]PoissonConfig{
		"nodes":   {Nodes: 1, ArrivalRate: 1, MeanHolding: 1, Count: 1},
		"rate":    {Nodes: 2, ArrivalRate: 0, MeanHolding: 1, Count: 1},
		"holding": {Nodes: 2, ArrivalRate: 1, MeanHolding: -1, Count: 1},
		"hotfrac": {Nodes: 2, ArrivalRate: 1, MeanHolding: 1, Count: 1, HotFraction: 2},
		"hotmiss": {Nodes: 2, ArrivalRate: 1, MeanHolding: 1, Count: 1, HotFraction: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			Poisson(c)
		}()
	}
}

func TestBatch(t *testing.T) {
	reqs := Batch(6, 100, 1)
	if len(reqs) != 100 {
		t.Fatalf("len = %d", len(reqs))
	}
	for _, r := range reqs {
		if r.Src == r.Dst || r.Arrival != 0 || !math.IsInf(r.Holding, 1) {
			t.Fatalf("bad batch request %+v", r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Batch(1, 1, 0) should panic")
		}
	}()
	Batch(1, 1, 0)
}

func TestAllPairs(t *testing.T) {
	reqs := AllPairs(5)
	if len(reqs) != 20 {
		t.Fatalf("len = %d, want 20", len(reqs))
	}
	seen := map[[2]int]bool{}
	for _, r := range reqs {
		key := [2]int{r.Src, r.Dst}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

// Property: endpoints always valid and distinct for any seed/size.
func TestQuickEndpointsValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%20
		reqs := Poisson(PoissonConfig{
			Nodes: n, ArrivalRate: 1, MeanHolding: 1, Count: 100, Seed: seed,
		})
		for _, r := range reqs {
			if r.Src == r.Dst || r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
