package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety drives every method on nil receivers: tracing off must be a
// sequence of no-ops, never a panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Enable()
	tr.Disable()
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Flight() != nil {
		t.Error("nil tracer has a flight recorder")
	}
	if tr.LastID() != 0 {
		t.Error("nil tracer has a last ID")
	}
	tc := tr.Start("min-cost", 0, 1)
	if tc != nil {
		t.Fatal("nil tracer handed out a trace")
	}
	if tc.ReqID() != -1 {
		t.Errorf("nil trace ReqID = %d, want -1", tc.ReqID())
	}
	sp := tc.Begin("phase")
	if sp != -1 {
		t.Errorf("nil trace Begin = %d, want -1", sp)
	}
	tc.SpanInt(sp, "k", 1)
	tc.SpanFloat(sp, "k", 1)
	tc.SpanStr(sp, "k", "v")
	tc.SpanBool(sp, "k", true)
	tc.EndSpan(sp)
	tc.Int("k", 1)
	tc.Float("k", 1)
	tc.Str("k", "v")
	tc.SetPayload(42)
	tc.Finish(StatusOK)

	var fr *FlightRecorder
	fr.Add(nil)
	if fr.Len() != 0 || fr.Total() != 0 || fr.Snapshot() != nil || fr.Find(1) != nil {
		t.Error("nil flight recorder is not empty")
	}
}

func TestDisabledTracerHandsOutNil(t *testing.T) {
	tr := New(Config{})
	if !tr.Enabled() {
		t.Fatal("fresh tracer is disabled")
	}
	tr.Disable()
	if tc := tr.Start("min-cost", 0, 1); tc != nil {
		t.Fatal("disabled tracer handed out a trace")
	}
	tr.Enable()
	if tc := tr.Start("min-cost", 0, 1); tc == nil {
		t.Fatal("re-enabled tracer handed out nil")
	}
}

func TestMonotonicIDsAndSpans(t *testing.T) {
	tr := New(Config{Capacity: 8})
	a := tr.Start("min-cost", 0, 5)
	b := tr.Start("min-load", 2, 3)
	if a.Req != 1 || b.Req != 2 {
		t.Fatalf("request IDs = %d, %d; want 1, 2", a.Req, b.Req)
	}
	if tr.LastID() != 2 {
		t.Errorf("LastID = %d, want 2", tr.LastID())
	}

	sp := a.Begin("suurballe")
	a.SpanInt(sp, "relaxations", 17)
	a.SpanBool(sp, "found", true)
	a.EndSpan(sp)
	a.Str("skeleton", "miss")
	a.Float("cost", 3.5)
	a.Finish(StatusOK)
	b.Finish(StatusBlocked)

	if got := len(a.Spans); got != 1 {
		t.Fatalf("span count = %d, want 1", got)
	}
	s := a.Spans[0]
	if s.Name != "suurballe" || s.T1 < s.T0 || s.Dur() < 0 {
		t.Errorf("bad span %+v", s)
	}
	if len(s.Attrs) != 2 || s.Attrs[0].Value() != int64(17) || s.Attrs[1].Value() != true {
		t.Errorf("bad span attrs %+v", s.Attrs)
	}
	if a.Status != StatusOK || b.Status != StatusBlocked {
		t.Errorf("statuses = %q, %q", a.Status, b.Status)
	}
	if got := tr.Flight().Len(); got != 2 {
		t.Errorf("flight recorder holds %d traces, want 2", got)
	}
	if tr.Flight().Find(1) != a || tr.Flight().Find(2) != b {
		t.Error("Find did not return the recorded traces")
	}
	if tr.Flight().Find(99) != nil {
		t.Error("Find invented a trace")
	}
}

func TestUnendedSpanHasZeroDur(t *testing.T) {
	tr := New(Config{})
	tc := tr.Start("min-cost", 0, 1)
	tc.Begin("never-ended")
	tc.Finish(StatusOK)
	if d := tc.Spans[0].Dur(); d != 0 {
		t.Errorf("unended span Dur = %v, want 0", d)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Start("min-cost", 0, 1).Finish(StatusOK)
	}
	fr := tr.Flight()
	if fr.Len() != 4 || fr.Total() != 10 {
		t.Fatalf("Len=%d Total=%d, want 4, 10", fr.Len(), fr.Total())
	}
	snap := fr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d traces", len(snap))
	}
	for i, tc := range snap {
		if want := int64(7 + i); tc.Req != want {
			t.Errorf("snapshot[%d].Req = %d, want %d (oldest first)", i, tc.Req, want)
		}
	}
	if fr.Find(3) != nil {
		t.Error("evicted trace still findable")
	}
}

func TestDumpJSONL(t *testing.T) {
	tr := New(Config{Capacity: 8})
	tc := tr.Start("min-cost", 0, 9)
	sp := tc.Begin("reweight")
	tc.SpanStr(sp, "kind", "cost")
	tc.EndSpan(sp)
	tc.Float("pair_cost", 12.5)
	tc.SetPayload(map[string]int{"hops": 3})
	tc.Finish(StatusOK)
	tr.Start("min-load", 1, 2).Finish(StatusBlocked)

	var buf bytes.Buffer
	if err := tr.Flight().Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2", len(lines))
	}
	var first struct {
		Req    int64          `json:"req"`
		Kind   string         `json:"kind"`
		S      int            `json:"s"`
		T      int            `json:"t"`
		Status string         `json:"status"`
		Attrs  map[string]any `json:"attrs"`
		Spans  []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
		Payload map[string]any `json:"payload"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if first.Req != 1 || first.Kind != "min-cost" || first.Status != StatusOK {
		t.Errorf("bad first line: %+v", first)
	}
	if first.Attrs["pair_cost"] != 12.5 {
		t.Errorf("attrs = %v", first.Attrs)
	}
	if len(first.Spans) != 1 || first.Spans[0].Name != "reweight" || first.Spans[0].Attrs["kind"] != "cost" {
		t.Errorf("spans = %+v", first.Spans)
	}
	if first.Payload["hops"] != float64(3) {
		t.Errorf("payload = %v", first.Payload)
	}
}

func TestDumpFile(t *testing.T) {
	tr := New(Config{})
	tr.Start("min-cost", 0, 1).Finish(StatusOK)
	path := t.TempDir() + "/flight.jsonl"
	if err := tr.Flight().DumpFile(path); err != nil {
		t.Fatal(err)
	}
	// Truncation: a second dump with one more trace must not append.
	tr.Start("min-cost", 0, 2).Finish(StatusOK)
	if err := tr.Flight().DumpFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Errorf("dump file has %d lines, want 2", n)
	}
}

func TestOnFailureFiresOnce(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	var failedReq int64
	tr := New(Config{
		Capacity: 8,
		OnFailure: func(fr *FlightRecorder, tc *Trace) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			failedReq = tc.Req
			if fr.Find(tc.Req) == nil {
				t.Error("failing trace not yet in the recorder")
			}
		},
	})
	tr.Start("min-cost", 0, 1).Finish(StatusOK)
	tr.Start("min-cost", 0, 2).Finish(StatusBlocked) // fires
	tr.Start("min-cost", 0, 3).Finish(StatusBlocked) // suppressed
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("OnFailure ran %d times, want 1", calls)
	}
	if failedReq != 2 {
		t.Errorf("OnFailure saw req %d, want 2", failedReq)
	}
}

// TestConcurrentRecordAndDump exercises the flight recorder the way the
// debug HTTP server does: one goroutine records while others dump and look
// up. Run under -race in CI.
func TestConcurrentRecordAndDump(t *testing.T) {
	tr := New(Config{Capacity: 32})
	const writers, readers, perWriter = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tc := tr.Start("min-cost", 0, 1)
				sp := tc.Begin("suurballe")
				tc.SpanInt(sp, "i", int64(i))
				tc.EndSpan(sp)
				status := StatusOK
				if i%7 == 0 {
					status = StatusBlocked
				}
				tc.Finish(status)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tr.Flight().Dump(io.Discard); err != nil {
					t.Errorf("dump: %v", err)
				}
				tr.Flight().Find(int64(i * 3))
				tr.Flight().Snapshot()
				tr.Flight().Len()
			}
		}()
	}
	wg.Wait()
	if got := tr.Flight().Total(); got != writers*perWriter {
		t.Errorf("Total = %d, want %d", got, writers*perWriter)
	}
	if got := tr.Flight().Len(); got != 32 {
		t.Errorf("Len = %d, want capacity 32", got)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 64 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestDumpReportsWriteError(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 10; i++ {
		tr.Start("min-cost", 0, 1).Finish(StatusOK)
	}
	if err := tr.Flight().Dump(&failWriter{}); err == nil {
		t.Fatal("dump on a failing writer returned nil")
	}
}
