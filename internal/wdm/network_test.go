package wdm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineNet builds 0 -> 1 -> 2 with all W wavelengths at the given uniform
// cost per link and full conversion at conversion cost cc.
func lineNet(w int, linkCost, convCost float64) *Network {
	g := NewNetwork(3, w)
	g.AddUniformLink(0, 1, linkCost)
	g.AddUniformLink(1, 2, linkCost)
	g.SetAllConverters(NewFullConverter(w, convCost))
	return g
}

func TestNewNetworkValidation(t *testing.T) {
	for _, c := range []struct{ n, w int }{{-1, 2}, {3, 0}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNetwork(%d,%d) should panic", c.n, c.w)
				}
			}()
			NewNetwork(c.n, c.w)
		}()
	}
}

func TestAddLinkBasics(t *testing.T) {
	g := NewNetwork(3, 4)
	id := g.AddLink(0, 1, []Wavelength{0, 2}, []float64{1.5, 2.5})
	l := g.Link(id)
	if l.From != 0 || l.To != 1 || l.ID != id {
		t.Fatalf("link = %+v", l)
	}
	if l.N() != 2 || l.U() != 0 {
		t.Fatalf("N=%d U=%d", l.N(), l.U())
	}
	if l.Cost(0) != 1.5 || l.Cost(2) != 2.5 {
		t.Fatal("costs wrong")
	}
	if !math.IsInf(l.Cost(1), 1) {
		t.Fatal("uninstalled wavelength should cost +Inf")
	}
	if len(g.Out(0)) != 1 || len(g.In(1)) != 1 {
		t.Fatal("adjacency wrong")
	}
	if g.Nodes() != 3 || g.W() != 4 || g.Links() != 1 {
		t.Fatal("dimensions wrong")
	}
}

func TestAddLinkPanics(t *testing.T) {
	g := NewNetwork(2, 2)
	cases := map[string]func(){
		"badNode":    func() { g.AddLink(0, 5, []Wavelength{0}, []float64{1}) },
		"badLambda":  func() { g.AddLink(0, 1, []Wavelength{7}, []float64{1}) },
		"negCost":    func() { g.AddLink(0, 1, []Wavelength{0}, []float64{-1}) },
		"lenMismtch": func() { g.AddLink(0, 1, []Wavelength{0, 1}, []float64{1}) },
		"infCost":    func() { g.AddLink(0, 1, []Wavelength{0}, []float64{math.Inf(1)}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUseReleaseAndLoad(t *testing.T) {
	g := NewNetwork(2, 4)
	id := g.AddUniformLink(0, 1, 1)
	l := g.Link(id)
	if l.Load() != 0 {
		t.Fatalf("initial load = %g", l.Load())
	}
	if err := g.Use(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Use(id, 1); err == nil {
		t.Fatal("double Use should fail")
	}
	if l.U() != 1 || l.Load() != 0.25 {
		t.Fatalf("U=%d load=%g", l.U(), l.Load())
	}
	if g.NetworkLoad() != 0.25 {
		t.Fatalf("NetworkLoad = %g", g.NetworkLoad())
	}
	if err := g.Release(id, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Release(id, 1); err == nil {
		t.Fatal("double Release should fail")
	}
	if err := g.Use(id, 9); err == nil {
		t.Fatal("Use of out-of-set wavelength should fail")
	}
}

func TestMeanCosts(t *testing.T) {
	g := NewNetwork(2, 3)
	id := g.AddLink(0, 1, []Wavelength{0, 1, 2}, []float64{1, 2, 6})
	l := g.Link(id)
	if got := l.MeanAvailCost(); got != 3 {
		t.Fatalf("MeanAvailCost = %g, want 3", got)
	}
	if got := l.MeanInstalledCost(); got != 3 {
		t.Fatalf("MeanInstalledCost = %g, want 3", got)
	}
	// Take λ2 (cost 6): avail mean = 1.5, installed mean = 3/3 = 1.
	if err := g.Use(id, 2); err != nil {
		t.Fatal(err)
	}
	if got := l.MeanAvailCost(); got != 1.5 {
		t.Fatalf("MeanAvailCost = %g, want 1.5", got)
	}
	if got := l.MeanInstalledCost(); got != 1 {
		t.Fatalf("MeanInstalledCost = %g, want 1", got)
	}
	// Exhaust the link: mean costs are +Inf.
	g.Use(id, 0)
	g.Use(id, 1)
	if !math.IsInf(l.MeanAvailCost(), 1) {
		t.Fatal("exhausted link should have +Inf mean avail cost")
	}
}

func TestConverters(t *testing.T) {
	fc := NewFullConverter(4, 2.5)
	if !fc.Allowed(0, 3) || fc.Cost(0, 3) != 2.5 || fc.Cost(1, 1) != 0 {
		t.Fatal("FullConverter wrong")
	}
	nc := NoConverter{}
	if nc.Allowed(0, 1) || !nc.Allowed(2, 2) || nc.Cost(2, 2) != 0 {
		t.Fatal("NoConverter wrong")
	}
	rc := NewRangeConverter(1, 3)
	if !rc.Allowed(1, 2) || rc.Allowed(0, 2) || rc.Cost(1, 2) != 3 || rc.Cost(2, 1) != 3 {
		t.Fatal("RangeConverter wrong")
	}
	mc := NewMatrixConverter(2, [][]float64{{0, 5}, {-1, 0}})
	if !mc.Allowed(0, 1) || mc.Allowed(1, 0) || mc.Cost(0, 1) != 5 {
		t.Fatal("MatrixConverter wrong")
	}
}

func TestMatrixConverterValidation(t *testing.T) {
	cases := map[string]func(){
		"rows":     func() { NewMatrixConverter(2, [][]float64{{0, 1}}) },
		"cols":     func() { NewMatrixConverter(2, [][]float64{{0}, {1, 0}}) },
		"diagonal": func() { NewMatrixConverter(2, [][]float64{{1, 1}, {1, 0}}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConvCost(t *testing.T) {
	g := NewNetwork(2, 3)
	g.SetConverter(0, NoConverter{})
	if g.ConvCost(0, 1, 1) != 0 {
		t.Fatal("identity conversion should be free")
	}
	if !math.IsInf(g.ConvCost(0, 0, 1), 1) {
		t.Fatal("disallowed conversion should be +Inf")
	}
	g.SetConverter(0, NewFullConverter(3, 4))
	if g.ConvCost(0, 0, 1) != 4 {
		t.Fatal("full conversion cost wrong")
	}
}

func TestSemilightpathCost(t *testing.T) {
	g := lineNet(2, 3, 1.5)
	p := &Semilightpath{Hops: []Hop{{Link: 0, Wavelength: 0}, {Link: 1, Wavelength: 1}}}
	if got := p.LinkCost(g); got != 6 {
		t.Fatalf("LinkCost = %g", got)
	}
	if got := p.ConvCost(g); got != 1.5 {
		t.Fatalf("ConvCost = %g", got)
	}
	if got := p.Cost(g); got != 7.5 {
		t.Fatalf("Cost = %g", got)
	}
	// No conversion when wavelengths match.
	q := &Semilightpath{Hops: []Hop{{0, 1}, {1, 1}}}
	if got := q.Cost(g); got != 6 {
		t.Fatalf("continuity Cost = %g", got)
	}
}

func TestSemilightpathValidate(t *testing.T) {
	g := lineNet(2, 1, 1)
	good := &Semilightpath{Hops: []Hop{{0, 0}, {1, 1}}}
	if err := good.Validate(g, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := good.ValidateAvailable(g, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(g, 0, 1); err == nil {
		t.Fatal("wrong destination accepted")
	}
	if err := good.Validate(g, 1, 2); err == nil {
		t.Fatal("wrong source accepted")
	}
	empty := &Semilightpath{}
	if err := empty.Validate(g, 0, 0); err == nil {
		t.Fatal("empty path accepted")
	}
	disconnected := &Semilightpath{Hops: []Hop{{1, 0}, {0, 0}}}
	if err := disconnected.Validate(g, 1, 1); err == nil {
		t.Fatal("disconnected walk accepted")
	}
	badLambda := &Semilightpath{Hops: []Hop{{0, 5}}}
	if err := badLambda.Validate(g, 0, 1); err == nil {
		t.Fatal("out-of-range wavelength accepted")
	}
	// Forbid conversion at node 1: mixed-wavelength path must fail.
	g.SetConverter(1, NoConverter{})
	if err := good.Validate(g, 0, 2); err == nil {
		t.Fatal("disallowed conversion accepted")
	}
	// Availability check.
	g.SetConverter(1, NewFullConverter(2, 1))
	g.Use(0, 0)
	if err := good.ValidateAvailable(g, 0, 2); err == nil {
		t.Fatal("in-use wavelength accepted by ValidateAvailable")
	}
	if err := good.Validate(g, 0, 2); err != nil {
		t.Fatalf("Validate should ignore availability: %v", err)
	}
}

func TestSemilightpathAccessors(t *testing.T) {
	g := lineNet(2, 1, 1)
	p := &Semilightpath{Hops: []Hop{{0, 0}, {1, 1}}}
	if p.Len() != 2 || p.Source(g) != 0 || p.Dest(g) != 2 {
		t.Fatal("accessors wrong")
	}
	nodes := p.Nodes(g)
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 1 || nodes[2] != 2 {
		t.Fatalf("Nodes = %v", nodes)
	}
	ids := p.LinkIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("LinkIDs = %v", ids)
	}
	if (&Semilightpath{}).Nodes(g) != nil {
		t.Fatal("empty path Nodes should be nil")
	}
	if s := p.Format(g); s == "" || s == "<empty>" {
		t.Fatalf("Format = %q", s)
	}
	if s := p.String(); s == "" {
		t.Fatal("String empty")
	}
	if s := (&Semilightpath{}).String(); s != "<empty>" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestEdgeDisjoint(t *testing.T) {
	a := &Semilightpath{Hops: []Hop{{0, 0}, {1, 0}}}
	b := &Semilightpath{Hops: []Hop{{2, 0}, {3, 0}}}
	c := &Semilightpath{Hops: []Hop{{1, 1}, {4, 0}}}
	if !a.EdgeDisjoint(b) {
		t.Fatal("a,b should be disjoint")
	}
	if a.EdgeDisjoint(c) {
		t.Fatal("a,c share link 1 (different λ does not matter)")
	}
}

func TestReserveReleasePath(t *testing.T) {
	g := lineNet(2, 1, 1)
	p := &Semilightpath{Hops: []Hop{{0, 0}, {1, 0}}}
	if err := g.Reserve(p); err != nil {
		t.Fatal(err)
	}
	if g.Link(0).U() != 1 || g.Link(1).U() != 1 {
		t.Fatal("reserve did not lock wavelengths")
	}
	// Conflicting reservation rolls back atomically.
	q := &Semilightpath{Hops: []Hop{{0, 1}, {1, 0}}}
	if err := g.Reserve(q); err == nil {
		t.Fatal("conflicting reserve should fail")
	}
	if !g.Link(0).HasAvail(1) {
		t.Fatal("failed reserve did not roll back hop 0")
	}
	if err := g.ReleasePath(p); err != nil {
		t.Fatal(err)
	}
	if g.Link(0).U() != 0 || g.Link(1).U() != 0 {
		t.Fatal("release did not unlock")
	}
	if err := g.ReleasePath(p); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestCloneAndReset(t *testing.T) {
	g := lineNet(3, 1, 1)
	g.Use(0, 0)
	c := g.Clone()
	if c.Link(0).U() != 1 {
		t.Fatal("clone lost availability state")
	}
	c.Use(0, 1)
	if g.Link(0).U() != 1 {
		t.Fatal("clone not independent")
	}
	g.ResetAvailability()
	if g.Link(0).U() != 0 {
		t.Fatal("ResetAvailability failed")
	}
	if g.TotalAvailable() != 6 {
		t.Fatalf("TotalAvailable = %d, want 6", g.TotalAvailable())
	}
}

func TestMaxDegree(t *testing.T) {
	g := NewNetwork(3, 1)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(0, 2, 1)
	g.AddUniformLink(1, 0, 1)
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestAddUniformPair(t *testing.T) {
	g := NewNetwork(2, 2)
	ab, ba := g.AddUniformPair(0, 1, 2.5)
	if g.Link(ab).From != 0 || g.Link(ba).From != 1 {
		t.Fatal("pair directions wrong")
	}
	if g.Link(ab).Cost(0) != 2.5 || g.Link(ba).Cost(1) != 2.5 {
		t.Fatal("pair costs wrong")
	}
}

// Property: Use/Release round-trips preserve availability exactly; network
// load is always U/N of the most loaded link.
func TestQuickUseReleaseInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 8
		g := NewNetwork(4, w)
		for i := 0; i < 6; i++ {
			g.AddUniformLink(rng.Intn(4), rng.Intn(4), 1+rng.Float64())
		}
		type pair struct{ link, lam int }
		var held []pair
		for op := 0; op < 100; op++ {
			if rng.Intn(2) == 0 || len(held) == 0 {
				l, lam := rng.Intn(g.Links()), rng.Intn(w)
				if g.Use(l, lam) == nil {
					held = append(held, pair{l, lam})
				}
			} else {
				i := rng.Intn(len(held))
				p := held[i]
				if g.Release(p.link, p.lam) != nil {
					return false
				}
				held = append(held[:i], held[i+1:]...)
			}
		}
		// Verify bookkeeping: per-link U matches held count.
		counts := make(map[int]int)
		for _, p := range held {
			counts[p.link]++
		}
		for id := 0; id < g.Links(); id++ {
			if g.Link(id).U() != counts[id] {
				return false
			}
		}
		// Release everything; availability must be full again.
		for _, p := range held {
			if g.Release(p.link, p.lam) != nil {
				return false
			}
		}
		return g.TotalAvailable() == g.Links()*w && g.NetworkLoad() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: path cost decomposes as LinkCost + ConvCost and is monotone in
// the number of hops for uniform networks.
func TestQuickCostDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(3)
		n := 4
		g := NewNetwork(n, w)
		for v := 0; v+1 < n; v++ {
			g.AddUniformLink(v, v+1, 1+rng.Float64()*3)
		}
		g.SetAllConverters(NewFullConverter(w, rng.Float64()))
		hops := make([]Hop, n-1)
		for i := range hops {
			hops[i] = Hop{Link: i, Wavelength: rng.Intn(w)}
		}
		p := &Semilightpath{Hops: hops}
		if err := p.Validate(g, 0, n-1); err != nil {
			return false
		}
		return math.Abs(p.Cost(g)-(p.LinkCost(g)+p.ConvCost(g))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
