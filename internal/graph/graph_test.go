package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds:
//
//	0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (7), 2 -> 3 (1)
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 7)
	g.AddEdge(2, 3, 1)
	return g
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := diamond()
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	e := g.Edge(2)
	if e.From != 1 || e.To != 2 || e.Weight != 2 || e.ID != 2 {
		t.Fatalf("Edge(2) = %+v", e)
	}
	if len(g.Out(0)) != 2 || len(g.In(3)) != 2 {
		t.Fatal("adjacency lists wrong")
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	// vertex 0: out 2 + in 0 = 2; vertex 1: out 2 + in 1 = 3;
	// vertex 2: out 1 + in 2 = 3; vertex 3: out 0 + in 2 = 2.
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 2, 1)
}

func TestDijkstraDiamond(t *testing.T) {
	g := diamond()
	r := g.Dijkstra(0)
	want := []float64{0, 1, 3, 4}
	for v, d := range want {
		if r.Dist[v] != d {
			t.Errorf("Dist[%d] = %g, want %g", v, r.Dist[v], d)
		}
	}
	path := r.PathTo(3, g)
	if err := g.ValidatePath(path, 0, 3); err != nil {
		t.Fatal(err)
	}
	if g.PathWeight(path) != 4 {
		t.Fatalf("path weight = %g", g.PathWeight(path))
	}
	// Path to source is empty but non-nil.
	if p := r.PathTo(0, g); p == nil || len(p) != 0 {
		t.Fatalf("PathTo(source) = %v", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	r := g.Dijkstra(0)
	if r.Reached(2) {
		t.Fatal("vertex 2 should be unreachable")
	}
	if !math.IsInf(r.Dist[2], 1) {
		t.Fatalf("Dist[2] = %g", r.Dist[2])
	}
	if r.PathTo(2, g) != nil {
		t.Fatal("PathTo unreachable should be nil")
	}
}

func TestDijkstraNegativePanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative edge")
		}
	}()
	g.Dijkstra(0)
}

func TestDijkstraRespectsDisabled(t *testing.T) {
	g := diamond()
	// Disable 0->1; now best to 3 is 0->2->3 = 5.
	g.Disable(0)
	r := g.Dijkstra(0)
	if r.Dist[3] != 5 {
		t.Fatalf("Dist[3] = %g, want 5", r.Dist[3])
	}
	g.Enable(0)
	if g.Dijkstra(0).Dist[3] != 4 {
		t.Fatal("Enable did not restore edge")
	}
	g.Disable(0)
	g.EnableAll()
	if g.Disabled(0) {
		t.Fatal("EnableAll failed")
	}
}

func TestBellmanFordNegativeEdges(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, -3)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 2)
	r, ok := g.BellmanFord(0)
	if !ok {
		t.Fatal("unexpected negative cycle")
	}
	if r.Dist[2] != 2 || r.Dist[3] != 4 {
		t.Fatalf("Dist = %v", r.Dist)
	}
	path := r.PathTo(3, g)
	if err := g.ValidatePath(path, 0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, -2)
	g.AddEdge(2, 1, 1) // cycle 1->2->1 has weight -1
	if _, ok := g.BellmanFord(0); ok {
		t.Fatal("negative cycle not detected")
	}
}

func TestBellmanFordMatchesDijkstraOnNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		m := n * 3
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()*10)
		}
		d := g.Dijkstra(0)
		b, ok := g.BellmanFord(0)
		if !ok {
			t.Fatal("spurious negative cycle")
		}
		for v := 0; v < n; v++ {
			if math.Abs(d.Dist[v]-b.Dist[v]) > 1e-9 &&
				!(math.IsInf(d.Dist[v], 1) && math.IsInf(b.Dist[v], 1)) {
				t.Fatalf("trial %d: Dist[%d] dijkstra=%g bf=%g", trial, v, d.Dist[v], b.Dist[v])
			}
		}
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	if !g.Reachable(0, 2) {
		t.Fatal("0 should reach 2")
	}
	if g.Reachable(0, 4) {
		t.Fatal("0 should not reach 4")
	}
	if !g.Reachable(2, 2) {
		t.Fatal("vertex reaches itself")
	}
	g.Disable(1)
	if g.Reachable(0, 2) {
		t.Fatal("disabled edge should break reachability")
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	g.Disable(4)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() || !c.Disabled(4) {
		t.Fatal("clone mismatch")
	}
	c.AddEdge(3, 0, 1)
	c.Enable(4)
	if g.M() != 5 || !g.Disabled(4) {
		t.Fatal("clone not independent")
	}
}

func TestValidatePathErrors(t *testing.T) {
	g := diamond()
	if err := g.ValidatePath([]int{0, 2, 4}, 0, 3); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath([]int{0, 3}, 0, 3); err != nil {
		// 0->1 then 1->3: actually valid. Use a genuinely broken one below.
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath([]int{1, 0}, 0, 3); err == nil {
		t.Fatal("disconnected walk accepted")
	}
	if err := g.ValidatePath([]int{0}, 0, 3); err == nil {
		t.Fatal("wrong endpoint accepted")
	}
	if err := g.ValidatePath([]int{99}, 0, 3); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g.Disable(0)
	if err := g.ValidatePath([]int{0, 3}, 0, 3); err == nil {
		t.Fatal("disabled edge accepted")
	}
}

func TestSimplePathsDiamond(t *testing.T) {
	g := diamond()
	var paths [][]int
	g.SimplePaths(0, 3, 0, func(p []int) bool {
		paths = append(paths, append([]int(nil), p...))
		return true
	})
	// 0-1-3, 0-1-2-3, 0-2-3
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3", len(paths))
	}
	for _, p := range paths {
		if err := g.ValidatePath(p, 0, 3); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimplePathsMaxLenAndEarlyStop(t *testing.T) {
	g := diamond()
	count := 0
	g.SimplePaths(0, 3, 2, func(p []int) bool {
		count++
		if len(p) > 2 {
			t.Fatalf("path longer than maxLen: %v", p)
		}
		return true
	})
	if count != 2 { // 0-1-3 and 0-2-3
		t.Fatalf("count = %d, want 2", count)
	}
	count = 0
	g.SimplePaths(0, 3, 0, func(p []int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop count = %d", count)
	}
}

// Property: on random DAG-ish graphs, every enumerated simple path is valid
// and none repeats a vertex; Dijkstra distance <= weight of any simple path.
func TestQuickSimplePathsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64())
			}
		}
		d := g.Dijkstra(0)
		ok := true
		g.SimplePaths(0, n-1, 0, func(p []int) bool {
			if err := g.ValidatePath(p, 0, n-1); err != nil {
				ok = false
				return false
			}
			if d.Dist[n-1] > g.PathWeight(p)+1e-9 {
				ok = false
				return false
			}
			seen := map[int]bool{0: true}
			for _, id := range p {
				v := g.Edge(id).To
				if seen[v] {
					ok = false
					return false
				}
				seen[v] = true
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1000
	g := New(n)
	for i := 0; i < 6*n; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()*10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(i % n)
	}
}
