package core

import (
	"math"
	"sort"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/wdm"
)

// Router is the reusable engine behind the package-level routing functions.
// It owns every piece of per-request scratch state — the Suurballe workspace
// (two Dijkstra workspaces, residual graph, combine buffers) and a cache of
// auxiliary-graph skeletons keyed by (s, t, node-disjointness) — so that a
// long-lived caller (a simulator arrival loop, a benchmark worker) routes
// requests without rebuilding the auxiliary graph or reallocating search
// state on every call. The MinCog threshold search in particular reweights
// one skeleton per round instead of constructing a fresh graph per round.
//
// A Router is bound to the network of its most recent call; routing on a
// different *wdm.Network drops the skeleton cache (workspaces are kept, as
// they adapt to any graph size). Structural network changes (AddLink,
// SetConverter) invalidate cached skeletons automatically via the network's
// TopoVersion. A Router is not safe for concurrent use; give each goroutine
// its own (e.g. one per parallel.MapWithState worker).
type Router struct {
	opts   *Options
	net    *wdm.Network
	ws     disjoint.Workspace
	skels  map[skelKey]*auxgraph.Skeleton // node-disjoint skeletons, per (s, t)
	shared *auxgraph.Skeleton             // one all-terminal skeleton for every edge-disjoint pair

	candTab *CandidateTable // lazily built when Options.Candidates > 0
	cand    candScratch
	arena   resultArena

	tracer   *obs.Tracer
	lastReq  int64 // request ID of the most recent traced call (-1 when untraced)
	lastTier Tier  // which tier answered the most recent routing call
}

// Tier identifies which routing tier answered a request — the stage-level
// attribution hook the serving layer splits its route timers by.
type Tier uint8

const (
	// TierExact: the exact auxiliary-graph pipeline routed the request
	// (no candidate table configured, or the algorithm has no fast tier).
	TierExact Tier = iota
	// TierCandidate: a precomputed candidate pair was feasible — the fast
	// tier answered without touching the auxiliary graph.
	TierCandidate
	// TierFallback: the candidate tier was consulted but no cached pair was
	// feasible; the exact pipeline answered.
	TierFallback
)

func (t Tier) String() string {
	switch t {
	case TierCandidate:
		return "candidate"
	case TierFallback:
		return "exact-fallback"
	}
	return "exact"
}

// LastTier reports which tier answered the most recent routing call on this
// router. Like LastTraceID it is only meaningful immediately after the call,
// on the goroutine that owns the router.
func (r *Router) LastTier() Tier { return r.lastTier }

type skelKey struct {
	s, t         int
	nodeDisjoint bool
}

// rebind points the router at net, dropping network-bound caches when the
// router was previously serving a different one.
func (r *Router) rebind(net *wdm.Network) {
	if r.net != net {
		r.net = net
		clear(r.skels)
		r.shared = nil
		r.candTab = nil
	}
}

// NewRouter returns a Router with the given options (nil for defaults).
func NewRouter(opts *Options) *Router {
	return &Router{opts: opts, lastReq: -1}
}

// SetTracer attaches a request tracer: every subsequent routing call opens a
// trace, records its phases (skeleton build, reweight, Suurballe, Lemma 2
// refinement, MinCog rounds) as spans, attaches an *explain.Report payload on
// success, and lands in the tracer's flight recorder. A nil tracer — or a
// disabled one — restores the zero-overhead path: every obs call below is
// nil-safe, so tracing off costs one atomic load per request and zero
// allocations (asserted by TestTracerDisabledAddsNoAllocs).
func (r *Router) SetTracer(tr *obs.Tracer) { r.tracer = tr }

// LastTraceID returns the request ID the most recent routing call traced, or
// -1 if it was untraced (no tracer, or tracer disabled). Callers correlating
// external records with flight-recorder dumps (e.g. the simulator's event
// stream) read this right after the routing call.
func (r *Router) LastTraceID() int64 { return r.lastReq }

// begin opens the per-request trace and points the Suurballe workspace at it.
func (r *Router) begin(kind string, s, t int) *obs.Trace {
	tc := r.tracer.Start(kind, s, t)
	r.lastReq = tc.ReqID()
	r.lastTier = TierExact
	r.ws.Trace = tc
	return tc
}

// finish closes the request trace. On success it attaches the explain report
// as the trace payload, so the debug endpoints re-render any retained request
// without re-routing it. loadAux marks results whose AuxWeight is
// congestion-based (G_c) and therefore not comparable to the Eq. 1 cost.
//
//wdm:coldpath beyond clearing the workspace trace, finish does work only when a tracer is attached
func (r *Router) finish(tc *obs.Trace, net *wdm.Network, res *Result, ok, loadAux bool) {
	r.ws.Trace = nil
	if tc == nil {
		return
	}
	if !ok {
		tc.Finish(obs.StatusBlocked)
		return
	}
	rep := explain.Build(net, explain.Input{
		Req:        tc.Req,
		Algorithm:  tc.Kind,
		S:          tc.S,
		T:          tc.T,
		Primary:    res.Primary,
		Backup:     res.Backup,
		Cost:       res.Cost,
		AuxWeight:  res.AuxWeight,
		LoadAux:    loadAux,
		NaiveCost:  res.NaiveCost,
		Threshold:  res.Threshold,
		Iterations: res.Iterations,
		PathLoad:   res.PathLoad,
	})
	rep.AddPhases(tc)
	tc.SetPayload(rep)
	tc.Finish(obs.StatusOK)
}

// skeleton returns a valid cached skeleton for (s, t), building one on
// demand, after a rebind to a different network, or after a structural
// network change. Edge-disjoint requests share a single all-terminal
// skeleton whose ReweightAt selects the pair; node-disjoint requests keep
// per-(s, t) skeletons, since the hub gadgets exempt s and t.
//
//wdm:coldpath skeleton rebuild happens only on rebind or structural change
func (r *Router) skeleton(net *wdm.Network, s, t int, nodeDisjoint bool, tc *obs.Trace) *auxgraph.Skeleton {
	r.rebind(net)
	if !nodeDisjoint {
		if r.shared == nil || !r.shared.Valid() {
			sp := tc.Begin("skeleton-build")
			r.shared = auxgraph.NewSharedSkeleton(net)
			tc.EndSpan(sp)
			tc.Str("skeleton", "build")
		} else {
			tc.Str("skeleton", "cache-hit")
		}
		return r.shared
	}
	if r.skels == nil {
		r.skels = make(map[skelKey]*auxgraph.Skeleton)
	}
	k := skelKey{s: s, t: t, nodeDisjoint: nodeDisjoint}
	sk := r.skels[k]
	if sk == nil || !sk.Valid() {
		sp := tc.Begin("skeleton-build")
		sk = auxgraph.NewSkeleton(net, s, t, nodeDisjoint)
		tc.EndSpan(sp)
		tc.Str("skeleton", "build")
		r.skels[k] = sk
	} else {
		tc.Str("skeleton", "cache-hit")
	}
	return sk
}

// ApproxMinCost routes (s, t) per §3.3 — see the package-level ApproxMinCost.
// When the candidate-path fast tier is enabled (Options.Candidates or
// Options.CandidateTable) it is tried first; the exact auxiliary-graph
// pipeline runs only when no cached candidate pair is currently feasible.
func (r *Router) ApproxMinCost(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tc := r.begin("min-cost", s, t)
	if tab := r.candidateTable(net); tab != nil {
		if res, ok := r.candidateRoute(net, s, t, tab); ok {
			instr.routeFound.Inc()
			instr.candidateHits.Inc()
			r.lastTier = TierCandidate
			tc.Str("tier", "candidate")
			r.finish(tc, net, res, true, false)
			return res, true
		}
		instr.candidateFallbacks.Inc()
		r.lastTier = TierFallback
		tc.Str("tier", "exact-fallback")
	}
	tb := instr.phaseBuild.Start()
	a := r.skeleton(net, s, t, false, tc).ReweightAt(s, t, auxgraph.Params{Kind: auxgraph.Cost, Trace: tc})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		r.finish(tc, net, nil, false, false)
		return nil, false
	}
	res, ok := r.mapAndRefine(net, a, pair, tc)
	if ok {
		instr.routeFound.Inc()
	}
	r.finish(tc, net, res, ok, false)
	return res, ok
}

// ApproxMinCostNodeDisjoint routes (s, t) with an internally node-disjoint
// pair — see the package-level ApproxMinCostNodeDisjoint.
func (r *Router) ApproxMinCostNodeDisjoint(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tc := r.begin("min-cost-node-disjoint", s, t)
	tb := instr.phaseBuild.Start()
	a := r.skeleton(net, s, t, true, tc).Reweight(auxgraph.Params{Kind: auxgraph.Cost, NodeDisjoint: true, Trace: tc})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		r.finish(tc, net, nil, false, false)
		return nil, false
	}
	res, ok := r.mapAndRefine(net, a, pair, tc)
	if !ok {
		r.finish(tc, net, nil, false, false)
		return nil, false
	}
	// Defensive: the hub gadget guarantees this, so a violation would be a
	// construction bug.
	if !nodesDisjoint(net, res.Primary, res.Backup, s, t) {
		r.ws.Trace = nil
		tc.Finish(obs.StatusError)
		return nil, false
	}
	instr.routeFound.Inc()
	r.finish(tc, net, res, true, false)
	return res, true
}

// minCogSearch is the Find_Two_Paths_MinCog doubling threshold search (see
// the algorithm notes on the package-level MinLoad). Unlike the historical
// implementation it reweights one cached skeleton per round instead of
// building a fresh auxiliary graph, so a k-round search costs one structure
// build plus k cheap weight passes. The returned pair aliases the router's
// Suurballe workspace and must be consumed before the next routing call.
func (r *Router) minCogSearch(net *wdm.Network, s, t int, kind auxgraph.Kind, tc *obs.Trace) (theta float64, aOut *auxgraph.Aux, pairOut *disjoint.Pair, iters int, ok bool) {
	defer instr.phaseMinCog.Stop(instr.phaseMinCog.Start())
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	defer func() { instr.mincogIters.Observe(float64(iters)) }()
	sp := tc.Begin("mincog")
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	defer func() {
		tc.SpanInt(sp, "iters", int64(iters))
		tc.SpanFloat(sp, "theta", theta)
		tc.SpanBool(sp, "found", ok)
		tc.EndSpan(sp)
	}()
	lo, hi, any := thetaBounds(net)
	if !any {
		return 0, nil, nil, 0, false
	}
	sk := r.skeleton(net, s, t, false, tc)
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	try := func(theta float64) (*auxgraph.Aux, *disjoint.Pair, bool) {
		a := sk.ReweightAt(s, t, auxgraph.Params{Kind: kind, Threshold: theta, Base: r.opts.base(), Trace: tc})
		pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
		return a, pair, ok
	}
	delta := hi - lo
	if delta <= 1e-12 {
		// Uniform loads: the only meaningful graph is the full residual one.
		a, pair, ok := try(hi)
		return hi, a, pair, 1, ok
	}
	j0 := int(math.Ceil(math.Log2(1 / delta)))
	if j0 < 0 {
		j0 = 0
	}
	inc := delta / math.Pow(2, float64(j0))
	theta = lo
	maxIter := r.opts.maxIter()
	for iters < maxIter {
		iters++
		if theta >= hi {
			theta = hi
		}
		a, pair, ok := try(theta)
		if ok {
			return theta, a, pair, iters, true
		}
		if theta >= hi {
			return 0, nil, nil, iters, false // drop the request
		}
		theta += inc
		inc *= 2
	}
	// Iteration cap: last resort, the complete residual graph.
	iters++
	a, pair, ok := try(hi)
	return hi, a, pair, iters, ok
}

// MinLoad routes (s, t) per §4.1 — see the package-level MinLoad.
func (r *Router) MinLoad(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tc := r.begin("min-load", s, t)
	theta, a, pair, iters, ok := r.minCogSearch(net, s, t, auxgraph.Load, tc)
	if !ok {
		r.finish(tc, net, nil, false, true)
		return nil, false
	}
	res, ok := r.mapAndRefine(net, a, pair, tc)
	if !ok {
		r.finish(tc, net, nil, false, true)
		return nil, false
	}
	res.Threshold = theta
	res.Iterations = iters
	instr.routeFound.Inc()
	r.finish(tc, net, res, true, true)
	return res, true
}

// MinLoadCost routes (s, t) per §4.2 — see the package-level MinLoadCost.
func (r *Router) MinLoadCost(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tc := r.begin("min-load-cost", s, t)
	theta, _, _, iters, ok := r.minCogSearch(net, s, t, auxgraph.Load, tc)
	if !ok {
		r.finish(tc, net, nil, false, false)
		return nil, false
	}
	sk := r.skeleton(net, s, t, false, tc)
	tb := instr.phaseBuild.Start()
	a := sk.ReweightAt(s, t, auxgraph.Params{Kind: auxgraph.LoadCost, Threshold: theta, Base: r.opts.base(), Trace: tc})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		// ϑ was certified feasible on the identical G_c skeleton; reaching
		// here means numerics only. Fall back to the full residual graph.
		a = sk.ReweightAt(s, t, auxgraph.Params{Kind: auxgraph.LoadCost, Threshold: math.Inf(1), Trace: tc})
		pair, ok = r.ws.Suurballe(a.G, a.S, a.T)
		if !ok {
			r.finish(tc, net, nil, false, false)
			return nil, false
		}
	}
	res, ok := r.mapAndRefine(net, a, pair, tc)
	if !ok {
		r.finish(tc, net, nil, false, false)
		return nil, false
	}
	res.Threshold = theta
	res.Iterations = iters
	instr.routeFound.Inc()
	// The final pair comes from G_rc, whose ω is cost-weighted, so the
	// Lemma 2 bound applies (unlike MinLoad's congestion-weighted ω).
	r.finish(tc, net, res, true, false)
	return res, true
}

// TwoStepMinCost is the naive baseline — see the package-level TwoStepMinCost.
// It uses no auxiliary graph, so the Router adds only the uniform call
// surface and the request trace (no phase spans, no aux pair to audit).
func (r *Router) TwoStepMinCost(net *wdm.Network, s, t int) (*Result, bool) {
	tc := r.begin("two-step", s, t)
	res, ok := TwoStepMinCost(net, s, t, r.opts)
	r.finish(tc, net, res, ok, false)
	return res, ok
}

// OptimalLoadOracle computes the exact minimum achievable path load — see the
// package-level OptimalLoadOracle. Each candidate cap reweights the same
// cached skeleton.
func (r *Router) OptimalLoadOracle(net *wdm.Network, s, t int) (float64, bool) {
	r.ws.Trace = nil // oracle probes are not request-scoped; never trace them
	ratios := map[float64]bool{}
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.Avail().Empty() || l.N() == 0 {
			continue
		}
		ratios[float64(l.U()+1)/float64(l.N())] = true
	}
	if len(ratios) == 0 {
		return 0, false
	}
	cands := make([]float64, 0, len(ratios))
	for r := range ratios {
		cands = append(cands, r)
	}
	sort.Float64s(cands)
	sk := r.skeleton(net, s, t, false, nil)
	for _, c := range cands {
		// Exact filter: keep exactly the links whose post-routing ratio
		// (U+1)/N stays within the candidate cap.
		a := sk.ReweightAt(s, t, auxgraph.Params{
			Kind: auxgraph.Load,
			Filter: func(id int) bool {
				l := net.Link(id)
				return float64(l.U()+1)/float64(l.N()) <= c+1e-12
			},
		})
		if _, ok := r.ws.Suurballe(a.G, a.S, a.T); ok {
			return c, true
		}
	}
	return 0, false
}
