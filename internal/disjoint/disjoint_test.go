package disjoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/graph"
)

// trap builds the classic Suurballe trap: the global shortest path uses the
// middle chord, after whose removal no second path exists, while an optimal
// disjoint pair (top, bottom) exists.
//
//	    1 ----- 2
//	  /    \ /    \
//	0       X      5   with chord path 0-1-4... concretely below.
func trap() *graph.Graph {
	g := graph.New(6)
	// Shortest path 0->1->4->5 weight 3 blocks both alternatives.
	g.AddEdge(0, 1, 1) // 0
	g.AddEdge(1, 4, 1) // 1
	g.AddEdge(4, 5, 1) // 2
	// Top path 0->1->2->5 (needs edge 0).
	g.AddEdge(1, 2, 2) // 3
	g.AddEdge(2, 5, 2) // 4
	// Bottom path 0->3->4->5 (needs edge 2).
	g.AddEdge(0, 3, 2) // 5
	g.AddEdge(3, 4, 2) // 6
	return g
}

// validPair delegates to the check oracle: both paths valid, edge-disjoint,
// weight equal to the recomputed sum.
func validPair(t *testing.T, g *graph.Graph, p *Pair, s, d int) {
	t.Helper()
	if err := check.GraphPair(g, p.Path1, p.Path2, s, d, p.Weight); err != nil {
		t.Fatal(err)
	}
}

func TestSuurballeTrap(t *testing.T) {
	g := trap()
	p, ok := Suurballe(g, 0, 5)
	if !ok {
		t.Fatal("Suurballe failed on trap")
	}
	validPair(t, g, p, 0, 5)
	// Optimal pair: (0-1-4-5 cancels) → top 0-1-2-5 (5) + bottom 0-3-4-5 (5)
	// = 10? Check: pairs are {0,3,4}+{5,6,2} weight 1+2+2+2+2+1 = 10.
	if p.Weight != 10 {
		t.Fatalf("Weight = %g, want 10", p.Weight)
	}
}

func TestTwoStepFailsOnTrap(t *testing.T) {
	g := trap()
	if _, ok := TwoStep(g, 0, 5); ok {
		t.Fatal("TwoStep should fail on the trap topology")
	}
	// And the graph must be restored afterwards.
	for id := 0; id < g.M(); id++ {
		if g.Disabled(id) {
			t.Fatal("TwoStep left edges disabled")
		}
	}
}

func TestBhandariTrap(t *testing.T) {
	g := trap()
	p, ok := Bhandari(g, 0, 5)
	if !ok {
		t.Fatal("Bhandari failed on trap")
	}
	validPair(t, g, p, 0, 5)
	if p.Weight != 10 {
		t.Fatalf("Weight = %g, want 10", p.Weight)
	}
}

func TestBruteForceTrap(t *testing.T) {
	g := trap()
	p, ok := BruteForce(g, 0, 5)
	if !ok || p.Weight != 10 {
		t.Fatalf("BruteForce = %+v, %v", p, ok)
	}
	validPair(t, g, p, 0, 5)
}

func TestSimpleParallelPair(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 5)
	p, ok := Suurballe(g, 0, 1)
	if !ok {
		t.Fatal("parallel edges form a disjoint pair")
	}
	validPair(t, g, p, 0, 1)
	if p.Weight != 8 {
		t.Fatalf("Weight = %g, want 8", p.Weight)
	}
}

func TestNoPairExists(t *testing.T) {
	// Single path only.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	for name, fn := range map[string]func(*graph.Graph, int, int) (*Pair, bool){
		"Suurballe": Suurballe, "Bhandari": Bhandari, "TwoStep": TwoStep, "BruteForce": BruteForce,
	} {
		if _, ok := fn(g, 0, 2); ok {
			t.Errorf("%s found a pair where only one path exists", name)
		}
		if _, ok := fn(g, 0, 0); ok {
			t.Errorf("%s accepted s == t", name)
		}
		if _, ok := fn(g, 2, 0); ok {
			t.Errorf("%s found a pair with unreachable target", name)
		}
	}
}

func TestSuurballeRespectsDisabled(t *testing.T) {
	g := graph.New(2)
	e0 := g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 10)
	p, ok := Suurballe(g, 0, 1)
	if !ok || p.Weight != 2 {
		t.Fatalf("pre-disable: %+v %v", p, ok)
	}
	g.Disable(e0)
	p, ok = Suurballe(g, 0, 1)
	if !ok || p.Weight != 11 {
		t.Fatalf("post-disable Weight = %g, want 11", p.Weight)
	}
}

func TestTwoStepSucceedsOnEasyGraph(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	p, ok := TwoStep(g, 0, 3)
	if !ok {
		t.Fatal("TwoStep failed on node-disjoint diamond")
	}
	validPair(t, g, p, 0, 3)
	if p.Weight != 6 {
		t.Fatalf("Weight = %g, want 6", p.Weight)
	}
}

func randGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1+rng.Float64()*5)
		g.AddEdge((v+1)%n, v, 1+rng.Float64()*5)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*5)
		}
	}
	return g
}

// Property: Suurballe, Bhandari and BruteForce agree on the optimal pair
// weight on small random graphs.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := randGraph(rng, n, n)
		s, d := 0, n-1
		ps, okS := Suurballe(g, s, d)
		pb, okB := Bhandari(g, s, d)
		pf, okF := BruteForce(g, s, d)
		if okS != okF || okB != okF {
			return false
		}
		if !okF {
			return true
		}
		return math.Abs(ps.Weight-pf.Weight) < 1e-9 && math.Abs(pb.Weight-pf.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: returned pairs are always valid and edge-disjoint; TwoStep when
// it succeeds is never cheaper than Suurballe.
func TestQuickPairValidityAndBaselineBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := randGraph(rng, n, 2*n)
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			return true
		}
		ps, okS := Suurballe(g, s, d)
		if okS {
			if err := g.ValidatePath(ps.Path1, s, d); err != nil {
				return false
			}
			if err := g.ValidatePath(ps.Path2, s, d); err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, id := range ps.Path1 {
				seen[id] = true
			}
			for _, id := range ps.Path2 {
				if seen[id] {
					return false
				}
			}
		}
		pt, okT := TwoStep(g, s, d)
		if okT && !okS {
			return false // Suurballe dominates: succeeds whenever any pair exists
		}
		if okT && pt.Weight < ps.Weight-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSuurballe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 500, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Suurballe(g, i%500, (i+250)%500)
	}
}

func BenchmarkBhandari(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 500, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bhandari(g, i%500, (i+250)%500)
	}
}
