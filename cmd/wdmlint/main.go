// Command wdmlint runs the repository's domain static-analysis rules (see
// DESIGN.md §10): the conventions the routing engine's correctness rests on —
// version-counter bumps on network mutation, reusable routers on hot paths,
// no copying of workspace types, deterministic map iteration, and checked
// errors on flush/close/encode — enforced at CI time.
//
// Usage:
//
//	wdmlint [-json] [-rules r1,r2] [-list] [packages...]
//
// Packages default to ./... . Exit status is 1 when findings are reported,
// 2 when loading or typechecking fails. Findings are suppressed case by case
// with `//wdmlint:ignore <rule> <reason>` on the offending line or the line
// above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lint"
	"repro/internal/lint/rules"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	ruleList := flag.String("rules", "", "comma-separated rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	if *list {
		for _, a := range rules.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectRules(*ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, active)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "wdmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "wdmlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectRules resolves a comma-separated rule filter against the registry.
func selectRules(filter string) ([]*lint.Analyzer, error) {
	if filter == "" {
		return rules.All, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range rules.All {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
