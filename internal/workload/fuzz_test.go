package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseMatrix exercises the traffic-matrix parser: it must never panic,
// every accepted matrix must be square with finite non-negative entries, a
// zero diagonal, and at least one positive off-diagonal weight (so sampling
// cannot divide by zero), and Encode → ParseMatrix must be the identity.
func FuzzParseMatrix(f *testing.F) {
	f.Add("0 1\n1 0\n")
	f.Add("# comment\n0 2 1\n2 0 0.5\n1 0.5 0\n")
	f.Add("0 1e308\n1 0\n")
	f.Add("0 -1\n1 0\n")
	f.Add("0 NaN\n1 0\n")
	f.Add("5 1\n1 5\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMatrix(strings.NewReader(src))
		if err != nil {
			return
		}
		n := m.Nodes()
		if n < 2 {
			t.Fatalf("accepted %d-node matrix", n)
		}
		positive := false
		for i, row := range m.Weight {
			if len(row) != n {
				t.Fatalf("accepted ragged row %d: %d entries, want %d", i, len(row), n)
			}
			for j, v := range row {
				if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("accepted entry [%d][%d] = %g", i, j, v)
				}
				if i == j && v != 0 {
					t.Fatalf("diagonal [%d][%d] = %g, want 0", i, j, v)
				}
				if i != j && v > 0 {
					positive = true
				}
			}
		}
		if !positive {
			t.Fatal("accepted matrix with no positive off-diagonal entry")
		}
		// Accepted matrices must drive the sampler without panicking...
		reqs := MatrixPoisson(MatrixConfig{Matrix: m, ArrivalRate: 1, MeanHolding: 1, Count: 10, Seed: 1})
		for _, r := range reqs {
			if r.Src == r.Dst || m.Weight[r.Src][r.Dst] <= 0 {
				t.Fatalf("sampled zero-weight pair %d→%d", r.Src, r.Dst)
			}
		}
		// ...and round-trip exactly.
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := ParseMatrix(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(m.Weight, back.Weight) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
