// Package lightpath finds optimal semilightpaths — minimum-cost paths with
// wavelength assignment and conversion-switch settings per Eq. 1 — using the
// layered-graph Dijkstra of Liang & Shen [13] and Chlamtac et al. [5]: the
// search state is (node, incoming wavelength), transitions pay the conversion
// cost c_v(λ, λ') plus the traversal cost w(e, λ'). With an indexed heap the
// running time is O(nW² + mW + nW log(nW)), the term the paper's Theorem 1
// charges to this step.
package lightpath

import (
	"math"

	"repro/internal/pq"
	"repro/internal/wdm"
)

// Options configures the search.
type Options struct {
	// AllowedLinks, when non-nil, restricts the search to links for which it
	// returns true. Used to search inside the induced subgraphs G_i of §3.3.
	AllowedLinks func(linkID int) bool
	// UseInstalled, when true, searches over Λ(e) instead of Λ_avail(e)
	// (i.e. ignores current reservations). The routing algorithms always
	// search the residual network (false).
	UseInstalled bool
}

// Optimal returns a minimum-cost semilightpath from s to t in the residual
// network, its cost, and whether one exists. The path is optimal over all
// walks from s to t given the conversion tables; since all costs are
// non-negative the optimum is realized by a path.
//
//wdm:coldpath exact DP solver builds per-call tables by design; the serving path uses AssignInto
func Optimal(g *wdm.Network, s, t int, opts *Options) (*wdm.Semilightpath, float64, bool) {
	if opts == nil {
		opts = &Options{}
	}
	if s == t || s < 0 || t < 0 || s >= g.Nodes() || t >= g.Nodes() {
		return nil, math.Inf(1), false
	}
	w := g.W()
	numStates := g.Nodes() * w

	dist := make([]float64, numStates)
	prevState := make([]int, numStates)
	prevLink := make([]int, numStates)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevState[i] = -1
		prevLink[i] = -1
	}

	lamSet := func(l *wdm.Link) interface{ ForEach(func(int) bool) } {
		if opts.UseInstalled {
			return l.Lambda()
		}
		return l.Avail()
	}

	h := pq.NewIndexedHeap(numStates)

	// Seed: leave s on each out-link/wavelength; the source imposes no
	// incoming wavelength, so no conversion cost is paid at s.
	for _, id := range g.Out(s) {
		if opts.AllowedLinks != nil && !opts.AllowedLinks(id) {
			continue
		}
		l := g.Link(id)
		lamSet(l).ForEach(func(lam int) bool {
			st := l.To*w + lam
			c := l.Cost(lam)
			if c < dist[st] {
				dist[st] = c
				prevState[st] = -1
				prevLink[st] = id
				h.PushOrDecrease(st, c)
			}
			return true
		})
	}

	best := math.Inf(1)
	bestState := -1
	for !h.Empty() {
		st, d := h.Pop()
		if d > dist[st] {
			continue
		}
		v, lam := st/w, st%w
		if v == t {
			if d < best {
				best = d
				bestState = st
			}
			// States are popped in non-decreasing distance order, so the
			// first t-state popped is optimal.
			break
		}
		conv := g.Converter(v)
		for _, id := range g.Out(v) {
			if opts.AllowedLinks != nil && !opts.AllowedLinks(id) {
				continue
			}
			l := g.Link(id)
			lamSet(l).ForEach(func(nlam int) bool {
				var cc float64
				if nlam != lam {
					if !conv.Allowed(lam, nlam) {
						return true
					}
					cc = conv.Cost(lam, nlam)
				}
				nd := d + cc + l.Cost(nlam)
				nst := l.To*w + nlam
				if nd < dist[nst] {
					dist[nst] = nd
					prevState[nst] = st
					prevLink[nst] = id
					h.PushOrDecrease(nst, nd)
				}
				return true
			})
		}
	}

	if bestState < 0 {
		return nil, math.Inf(1), false
	}

	// Reconstruct hops back from bestState.
	var rev []wdm.Hop
	st := bestState
	for st >= 0 {
		rev = append(rev, wdm.Hop{Link: prevLink[st], Wavelength: st % w})
		st = prevState[st]
	}
	hops := make([]wdm.Hop, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	return &wdm.Semilightpath{Hops: hops}, best, true
}

// OptimalInSubgraph runs Optimal restricted to the given set of link IDs —
// the G_i search of §3.3 (Lemma 2 refinement).
func OptimalInSubgraph(g *wdm.Network, s, t int, links map[int]bool) (*wdm.Semilightpath, float64, bool) {
	return Optimal(g, s, t, &Options{AllowedLinks: func(id int) bool { return links[id] }})
}

// AssignWavelengths finds the optimal wavelength assignment for a FIXED
// physical route (sequence of link IDs) by dynamic programming over
// (position, wavelength) states, and returns the resulting semilightpath and
// its Eq. 1 cost. Exists is false when no hop-by-hop assignment with allowed
// conversions is possible. Only currently-available wavelengths are used.
//
// This is the oracle used by the exhaustive exact solver: once the two
// edge-disjoint routes are fixed, wavelength assignment decomposes per path.
func AssignWavelengths(g *wdm.Network, route []int) (*wdm.Semilightpath, float64, bool) {
	var ws AssignWorkspace
	hops, cost, ok := AssignInto(&ws, g, route, nil)
	if !ok {
		return nil, math.Inf(1), false
	}
	//wdmlint:ignore hotalloc per-result header for the non-workspace API; hot callers use AssignInto
	return &wdm.Semilightpath{Hops: hops}, cost, true
}

// AssignWorkspace holds the DP state AssignInto reuses across calls. The zero
// value is ready; buffers grow to the largest route length × W seen.
type AssignWorkspace struct {
	dp, ndp []float64
	prev    []int32 // prev[i*w+lam] = predecessor wavelength of hop i at λ=lam
}

// AssignInto is AssignWavelengths with caller-owned storage: the DP state
// lives in ws and the hop sequence is written into hops (grown if needed), so
// a warm call allocates nothing. The returned slice aliases hops' backing
// array; wrap it in a Semilightpath or copy it out as needed.
//
//wdm:hotpath
func AssignInto(ws *AssignWorkspace, g *wdm.Network, route []int, hops []wdm.Hop) ([]wdm.Hop, float64, bool) {
	if len(route) == 0 {
		return hops[:0], math.Inf(1), false
	}
	w := g.W()
	if cap(ws.dp) < w {
		ws.dp = make([]float64, w)
		ws.ndp = make([]float64, w)
	}
	// dp[lam] = best cost of the prefix ending with wavelength lam on the
	// current link.
	dp, ndp := ws.dp[:w], ws.ndp[:w]
	if cap(ws.prev) < len(route)*w {
		ws.prev = make([]int32, len(route)*w)
	}
	prev := ws.prev[:len(route)*w]
	for i := range prev {
		prev[i] = -1
	}
	for lam := 0; lam < w; lam++ {
		dp[lam] = math.Inf(1)
	}
	first := g.Link(route[0])
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	first.Avail().ForEach(func(lam int) bool {
		dp[lam] = first.Cost(lam)
		return true
	})
	for i := 1; i < len(route); i++ {
		l := g.Link(route[i])
		prevLink := g.Link(route[i-1])
		if prevLink.To != l.From {
			return hops[:0], math.Inf(1), false // not a connected route
		}
		conv := g.Converter(l.From)
		for lam := 0; lam < w; lam++ {
			ndp[lam] = math.Inf(1)
		}
		row := prev[i*w : (i+1)*w]
		//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
		l.Avail().ForEach(func(nlam int) bool {
			base := l.Cost(nlam)
			for lam := 0; lam < w; lam++ {
				if math.IsInf(dp[lam], 1) {
					continue
				}
				var cc float64
				if lam != nlam {
					if !conv.Allowed(lam, nlam) {
						continue
					}
					cc = conv.Cost(lam, nlam)
				}
				if c := dp[lam] + cc + base; c < ndp[nlam] {
					ndp[nlam] = c
					row[nlam] = int32(lam)
				}
			}
			return true
		})
		dp, ndp = ndp, dp
	}
	best := math.Inf(1)
	bestLam := -1
	for lam := 0; lam < w; lam++ {
		if dp[lam] < best {
			best = dp[lam]
			bestLam = lam
		}
	}
	if bestLam < 0 {
		return hops[:0], math.Inf(1), false
	}
	if cap(hops) < len(route) {
		hops = make([]wdm.Hop, len(route))
	} else {
		hops = hops[:len(route)]
	}
	lam := bestLam
	for i := len(route) - 1; i >= 0; i-- {
		hops[i] = wdm.Hop{Link: route[i], Wavelength: lam}
		lam = int(prev[i*w+lam])
	}
	return hops, best, true
}
