// wdmroute routes a single connection request on a named topology and
// prints the resulting primary/backup semilightpaths with their wavelength
// assignments, cost breakdown, and load contribution:
//
//	wdmroute -topo nsfnet -w 8 -s 0 -t 13 -algo min-load-cost
//	wdmroute -topo waxman -n 30 -seed 7 -s 0 -t 29 -algo min-cost
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/wdm"
)

func route(algo string, net *wdm.Network, s, t int) (*core.Result, bool, error) {
	switch algo {
	case "min-cost":
		r, ok := core.ApproxMinCost(net, s, t, nil)
		return r, ok, nil
	case "min-load":
		r, ok := core.MinLoad(net, s, t, nil)
		return r, ok, nil
	case "min-load-cost":
		r, ok := core.MinLoadCost(net, s, t, nil)
		return r, ok, nil
	case "two-step":
		r, ok := core.TwoStepMinCost(net, s, t, nil)
		return r, ok, nil
	case "node-disjoint":
		r, ok := core.ApproxMinCostNodeDisjoint(net, s, t, nil)
		return r, ok, nil
	}
	return nil, false, fmt.Errorf("unknown algorithm %q (min-cost, min-load, min-load-cost, two-step, node-disjoint)", algo)
}

func main() {
	topoName := flag.String("topo", "nsfnet", "topology: nsfnet, arpa2, ring, grid, waxman, complete")
	file := flag.String("file", "", "load topology from a JSON file instead of -topo")
	n := flag.Int("n", 16, "node count for parametric topologies")
	w := flag.Int("w", 8, "wavelengths per fiber")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	s := flag.Int("s", 0, "source node")
	t := flag.Int("t", 13, "destination node")
	algo := flag.String("algo", "min-cost", "routing algorithm")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	var net *wdm.Network
	var err error
	net, err = cli.LoadOrBuild(*file, *topoName, *n, *w, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *s < 0 || *s >= net.Nodes() || *t < 0 || *t >= net.Nodes() || *s == *t {
		fmt.Fprintf(os.Stderr, "invalid request %d→%d on %d-node topology\n", *s, *t, net.Nodes())
		os.Exit(1)
	}
	r, ok, err := route(*algo, net, *s, *t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !ok {
		fmt.Printf("request %d→%d: no two edge-disjoint semilightpaths exist\n", *s, *t)
		os.Exit(2)
	}
	fmt.Printf("topology   %s (n=%d, m=%d directed links, W=%d)\n",
		*topoName, net.Nodes(), net.Links(), net.W())
	fmt.Printf("request    %d → %d via %s\n", *s, *t, *algo)
	fmt.Printf("primary    %s\n", r.Primary.Format(net))
	fmt.Printf("           link cost %.4g + conversion cost %.4g = %.4g\n",
		r.Primary.LinkCost(net), r.Primary.ConvCost(net), r.Primary.Cost(net))
	fmt.Printf("backup     %s\n", r.Backup.Format(net))
	fmt.Printf("           link cost %.4g + conversion cost %.4g = %.4g\n",
		r.Backup.LinkCost(net), r.Backup.ConvCost(net), r.Backup.Cost(net))
	fmt.Printf("pair cost  %.4g (aux-graph bound ω = %.4g)\n", r.Cost, r.AuxWeight)
	fmt.Printf("path load  %.4g", r.PathLoad)
	if r.Threshold > 0 {
		fmt.Printf("  (MinCog threshold ϑ = %.4g after %d rounds)", r.Threshold, r.Iterations)
	}
	fmt.Println()
}
