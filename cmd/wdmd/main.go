// wdmd is the long-lived routing daemon: it serves provision / teardown /
// reroute / status as HTTP/JSON over sharded, snapshot-isolated network
// state, with the standard debug surface (/healthz, /metrics,
// /debug/timeseries, /debug/net, /debug/pprof) built in.
//
//	wdmd -addr localhost:9101 -topo nsfnet -w 8 -shards 8
//	curl -s -X POST -d '{"id":1,"src":0,"dst":9}' localhost:9101/provision
//	curl -s localhost:9101/status
//
// Two load-generator modes share the binary so CI and benchmarks need no
// extra tooling: -soak hammers an in-process engine (no HTTP overhead, the
// ~1M-request experiment), -drive hammers a live daemon over real HTTP (the
// CI smoke).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/timeseries"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "localhost:9101", "listen address for the HTTP API")
	topoName := flag.String("topo", "nsfnet", "topology: nsfnet, arpa2, ring, waxman")
	n := flag.Int("n", 16, "node count for parametric topologies")
	w := flag.Int("w", 8, "wavelengths per fiber")
	seed := flag.Int64("seed", 1, "topology seed (parametric topologies)")
	algo := flag.String("algo", "min-load-cost", "default routing: min-cost, min-load, min-load-cost, two-step")
	shards := flag.Int("shards", 0, "routing shards (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 0, "max admissions folded into one epoch (0 = 64)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = 128)")
	retries := flag.Int("retries", 0, "conflict retry budget per request (0 = 4, -1 = none)")
	candidates := flag.Int("candidates", 0, "candidate fast tier: k precomputed route pairs per node pair (0 = off)")
	journalCap := flag.Int("journal", 0, "retain up to this many commit-ordered journal entries (0 = off)")
	window := flag.Float64("window", 5, "telemetry window width in wall-clock seconds (0 = telemetry off)")
	timeseriesOut := flag.String("timeseries-out", "", "stream sealed telemetry windows to this file (.csv → CSV, else JSONL)")
	sloP99 := flag.Float64("slo-p99", 0, "SLO: p99 request latency ceiling in seconds (0 = off)")
	sloBlocking := flag.Float64("slo-blocking", 0, "SLO: blocking-probability ceiling (0 = off)")
	sloConflicts := flag.Float64("slo-conflict-rate", 0, "SLO: commit-conflict rate ceiling in conflicts/second (0 = off)")
	sloStale := flag.Float64("slo-stale-epochs", 0, "SLO: epoch-publish staleness ceiling in seconds (0 = off)")
	sloShort := flag.Int("slo-short", 0, "SLO short burn window in sealed telemetry windows (0 = 3)")
	sloLong := flag.Int("slo-long", 0, "SLO long burn window in sealed telemetry windows (0 = 12)")
	incidentDir := flag.String("incident-dir", "", "capture incident bundles (pprof + flight + timeseries + status) into this directory on SLO breach")
	incidentEvery := flag.Duration("incident-every", 0, "minimum interval between incident captures (0 = 1m)")
	flightCap := flag.Int("flight", obs.DefaultCapacity, "flight-recorder capacity (last N request traces; 0 = tracing off)")
	soakCount := flag.Int("soak", 0, "soak mode: run this many in-process requests instead of serving, print the report, exit")
	drive := flag.Bool("drive", false, "drive mode: hammer a live daemon at http://<addr> instead of serving")
	count := flag.Int("count", 5000, "request count for -drive")
	clients := flag.Int("clients", 16, "client goroutines for -soak / -drive")
	maxLive := flag.Int("max-live", 32, "per-client live-connection cap for -soak / -drive")
	rerouteEvery := flag.Int("reroute-every", 50, "issue a reroute every n-th soak operation (0 = off)")
	jsonOut := flag.Bool("json", false, "print the -soak / -drive report as JSON")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	algorithm, err := serve.ParseAlgo(*algo)
	if err != nil {
		fatal(err)
	}

	if *drive {
		rep, err := serve.Drive("http://"+*addr, serve.DriveConfig{
			Requests: *count,
			Clients:  *clients,
			Seed:     *seed,
			MaxLive:  *maxLive,
			Nodes:    nodesOf(*topoName, *n, *w, *seed),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, rep)
			fatal(err)
		}
		report(rep, *jsonOut)
		return
	}

	network, err := cli.BuildTopology(*topoName, *n, *w, *seed)
	if err != nil {
		fatal(err)
	}

	reg := cli.EnableAllMetrics()
	serve.EnableMetrics(reg)
	var tracer *obs.Tracer
	if *flightCap > 0 && *soakCount == 0 {
		tracer = obs.New(obs.Config{Capacity: *flightCap})
	}

	engine := serve.New(network, serve.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchMax:   *batch,
		MaxRetries: *retries,
		Algorithm:  algorithm,
		Candidates: *candidates,
		JournalCap: *journalCap,
		Window:     *window,
		Tracer:     tracer,
	})
	if *timeseriesOut != "" {
		fh, err := os.Create(*timeseriesOut)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*timeseriesOut, ".csv") {
			snk := timeseries.NewCSV(fh)
			engine.SetTelemetrySink(snk, snk.Close)
		} else {
			snk := timeseries.NewJSONL(fh)
			engine.SetTelemetrySink(snk, snk.Close)
		}
	}

	// SLO watchdog: each -slo-* flag declares one objective over the sealed
	// telemetry windows; breaches capture incident bundles into -incident-dir.
	var objectives []slo.Objective
	addObj := func(name, series string, kind slo.Kind, max float64) {
		if max > 0 {
			objectives = append(objectives, slo.Objective{
				Name: name, Series: series, Kind: kind, Max: max,
				ShortWindows: *sloShort, LongWindows: *sloLong,
			})
		}
	}
	addObj("request-p99", serve.SeriesRequestLatency, slo.KindP99, *sloP99)
	addObj("blocking", serve.SeriesBlocking, slo.KindRatio, *sloBlocking)
	addObj("conflict-rate", serve.SeriesConflicts, slo.KindRate, *sloConflicts)
	addObj("epoch-staleness", serve.SeriesEpochs, slo.KindStaleness, *sloStale)
	if len(objectives) > 0 {
		watchdog, err := slo.New(objectives...)
		if err != nil {
			fatal(err)
		}
		watchdog.EnableMetrics(reg)
		var capturer *slo.Capturer
		if *incidentDir != "" {
			capturer, err = slo.NewCapturer(slo.CaptureConfig{
				Dir:         *incidentDir,
				MinInterval: *incidentEvery,
				Flight:      tracer.Flight(),
				Series:      engine.Collector(),
				Status:      func() any { return engine.Status() },
			})
			if err != nil {
				fatal(err)
			}
		}
		if err := engine.AttachSLO(watchdog, capturer); err != nil {
			fatal(err)
		}
	}

	if err := engine.Start(); err != nil {
		fatal(err)
	}

	if *soakCount > 0 {
		rep, err := serve.RunSoak(engine, serve.SoakConfig{
			Requests:     *soakCount,
			Clients:      *clients,
			Seed:         *seed,
			MaxLive:      *maxLive,
			RerouteEvery: *rerouteEvery,
			Drain:        true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, rep)
			fatal(err)
		}
		report(rep, *jsonOut)
		if err := engine.Close(); err != nil {
			fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: engine.Handler(reg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wdmd: %s (%d nodes, W=%d, %s) listening on http://%s\n",
		*topoName, engine.Nodes(), engine.W(), algorithm, ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "wdmd: %v, shutting down\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Shutdown order: stop accepting HTTP first, then drain the engine —
	// both error paths are checked (lost sink flushes are real data loss in
	// a soak, and wdmlint errcheck-lite enforces exactly these two calls).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "wdmd: http shutdown: %v\n", err)
	}
	if err := engine.Close(); err != nil {
		fatal(fmt.Errorf("wdmd: engine close: %w", err))
	}
	fmt.Fprintln(os.Stderr, "wdmd: clean shutdown")
}

// nodesOf resolves the node count the drive workload draws endpoints from
// without keeping the topology around.
func nodesOf(topo string, n, w int, seed int64) int {
	network, err := cli.BuildTopology(topo, n, w, seed)
	if err != nil {
		fatal(err)
	}
	return network.Nodes()
}

// report prints a soak/drive report as text or JSON.
func report(v fmt.Stringer, asJSON bool) {
	if !asJSON {
		fmt.Println(v)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}
