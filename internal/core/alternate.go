package core

import (
	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// AlternateTable implements fixed-alternate robust routing: a ranked list of
// edge-disjoint route pairs is precomputed per node pair on the idle
// network, and at request time the first pair whose wavelengths are
// currently assignable wins. This is the classic cheap-lookup baseline the
// paper's adaptive algorithms (which recompute routes on the live residual
// network) are implicitly compared against [16].
type AlternateTable struct {
	k int
	// routes[s*n+t] lists up to k candidate (primaryRoute, backupRoute)
	// link-ID pairs in increasing idle-network cost order.
	routes [][][2][]int
	n      int
}

// BuildAlternateTable precomputes up to k alternate route pairs for every
// ordered node pair. Successive alternates use pairwise link-disjoint route
// sets (each alternate is itself an edge-disjoint pair; the j-th alternate
// avoids all links of alternates 1..j−1), so a busy first choice leaves the
// later ones usable. Building is quadratic in nodes; intended to run once at
// network commissioning.
func BuildAlternateTable(net *wdm.Network, k int, opts *Options) *AlternateTable {
	if k <= 0 {
		k = 1
	}
	n := net.Nodes()
	tbl := &AlternateTable{k: k, n: n, routes: make([][][2][]int, n*n)}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			a := auxgraph.Build(net, s, t, auxgraph.Params{Kind: auxgraph.Cost})
			excluded := map[int]bool{}
			for alt := 0; alt < k; alt++ {
				// Disable aux link edges of already-used physical links.
				for id := 0; id < a.G.M(); id++ {
					aux := a.G.Edge(id).Aux
					if aux >= 0 && excluded[aux] {
						a.G.Disable(id)
					}
				}
				pair, ok := disjoint.Suurballe(a.G, a.S, a.T)
				if !ok {
					break
				}
				r1 := a.MapPath(pair.Path1)
				r2 := a.MapPath(pair.Path2)
				tbl.routes[s*n+t] = append(tbl.routes[s*n+t], [2][]int{r1, r2})
				for _, id := range r1 {
					excluded[id] = true
				}
				for _, id := range r2 {
					excluded[id] = true
				}
			}
			a.G.EnableAll()
		}
	}
	return tbl
}

// Alternates returns the number of precomputed pairs for (s, t).
func (tbl *AlternateTable) Alternates(s, t int) int {
	if s < 0 || t < 0 || s >= tbl.n || t >= tbl.n {
		return 0
	}
	return len(tbl.routes[s*tbl.n+t])
}

// Route serves a request from the precomputed table: the first alternate
// whose two routes admit a wavelength assignment on the current residual
// network is returned. ok is false when every alternate is blocked.
func (tbl *AlternateTable) Route(net *wdm.Network, s, t int) (*Result, bool) {
	if s < 0 || t < 0 || s >= tbl.n || t >= tbl.n || s == t {
		return nil, false
	}
	for _, cand := range tbl.routes[s*tbl.n+t] {
		p1, c1, ok1 := lightpath.AssignWavelengths(net, cand[0])
		if !ok1 {
			continue
		}
		p2, c2, ok2 := lightpath.AssignWavelengths(net, cand[1])
		if !ok2 {
			continue
		}
		//wdmlint:ignore hotalloc per-admission result object; covered by the sim alloc budget
		res := &Result{
			Primary:   p1,
			Backup:    p2,
			Cost:      c1 + c2,
			NaiveCost: c1 + c2,
		}
		if c2 < c1 {
			res.Primary, res.Backup = res.Backup, res.Primary
		}
		res.PathLoad = pathLoad(net, res.Primary, res.Backup)
		return res, true
	}
	return nil, false
}
