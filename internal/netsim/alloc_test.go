//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerOp accounting).
package netsim

import "testing"

// TestNilTelemetryAddsNoAllocs pins the collector-off contract on the
// simulator's routing hot path, matching internal/core's tracer bar: with
// Config.Telemetry unset, every telemetry hook the arrival path runs —
// routeStart, routeDone, rerouted, reconfigEvent, advance — must cost only
// nil checks, zero allocations and zero clock reads.
func TestNilTelemetryAddsNoAllocs(t *testing.T) {
	var tel *Telemetry
	if n := testing.AllocsPerRun(200, func() {
		t0 := tel.routeStart()
		tel.routeDone(t0, false)
		tel.routeDone(t0, true)
		tel.rerouted()
		tel.reconfigEvent()
		tel.advance(1e9)
		tel.finish()
	}); n != 0 {
		t.Fatalf("nil telemetry hooks allocate %v per op, want 0", n)
	}
}
