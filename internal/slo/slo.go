// Package slo turns the daemon's sealed telemetry windows into service-level
// objectives with multi-window burn-rate alerting, and captures forensic
// incident bundles when an objective starts burning.
//
// The design follows the standard burn-rate recipe: each objective declares a
// ceiling (Max) for one telemetry series; every sealed window contributes a
// burn sample value/Max; the watchdog keeps a short and a long trailing mean
// of those samples and reports
//
//	burning  — short mean ≥ ShortBurn AND long mean ≥ LongBurn
//	          (fast enough to page, slow enough not to flap on one window)
//	warning  — either mean ≥ WarnBurn but not burning
//	healthy  — otherwise
//
// Everything is driven by Collector seals, so the watchdog inherits whatever
// Clock the collector runs on — wall-clock in wdmd, sim-time in tests — and
// burn windows are deterministic under a SimClock.
package slo

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/timeseries"
)

// Kind selects how an objective reads its value out of a sealed window.
type Kind int

const (
	// KindP99 reads the window's p99 of a histogram series (e.g. request
	// latency). An empty window (no samples) burns 0 — no traffic, no burn.
	KindP99 Kind = iota
	// KindRatio reads a guarded num/den ratio series (e.g. blocking
	// probability). A zero-denominator window burns 0.
	KindRatio
	// KindRate reads a counter series as events per clock second (e.g.
	// commit-conflict rate).
	KindRate
	// KindStaleness measures how many consecutive seconds the counter series
	// has been zero — e.g. epoch-publish staleness: a daemon whose committer
	// stopped publishing epochs has a stuck data path even if requests
	// (all rejected) still flow.
	KindStaleness
)

func (k Kind) String() string {
	switch k {
	case KindP99:
		return "p99"
	case KindRatio:
		return "ratio"
	case KindRate:
		return "rate"
	case KindStaleness:
		return "staleness"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Objective is one declarative SLO over a telemetry series.
type Objective struct {
	// Name identifies the objective in /debug/slo, gauges and bundles.
	Name string
	// Series is the telemetry series the objective reads (histogram name for
	// KindP99, ratio for KindRatio, rate counter for KindRate/KindStaleness).
	Series string
	Kind   Kind
	// Max is the objective ceiling in the value's own unit (seconds for
	// KindP99/KindStaleness, a probability for KindRatio, events/second for
	// KindRate). A window burns value/Max; Max must be > 0.
	Max float64

	// ShortWindows and LongWindows size the two trailing burn means
	// (defaults 3 and 12 sealed windows). Short reacts, long confirms.
	ShortWindows int
	LongWindows  int
	// ShortBurn / LongBurn are the burning thresholds on the two means
	// (defaults 2 and 1: the short window must be at twice budget AND the
	// long window at budget before the objective pages). WarnBurn is the
	// warning threshold on either mean (default 1).
	ShortBurn float64
	LongBurn  float64
	WarnBurn  float64
}

func (o *Objective) shortWindows() int {
	if o.ShortWindows > 0 {
		return o.ShortWindows
	}
	return 3
}

func (o *Objective) longWindows() int {
	n := 12
	if o.LongWindows > 0 {
		n = o.LongWindows
	}
	if s := o.shortWindows(); n < s {
		n = s
	}
	return n
}

func (o *Objective) shortBurn() float64 {
	if o.ShortBurn > 0 {
		return o.ShortBurn
	}
	return 2
}

func (o *Objective) longBurn() float64 {
	if o.LongBurn > 0 {
		return o.LongBurn
	}
	return 1
}

func (o *Objective) warnBurn() float64 {
	if o.WarnBurn > 0 {
		return o.WarnBurn
	}
	return 1
}

// State is an objective's alert state.
type State int

const (
	Healthy State = iota
	Warning
	Burning
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Warning:
		return "warning"
	case Burning:
		return "burning"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Breach describes one transition into Burning — the payload handed to
// OnBreach callbacks (and from there to the incident Capturer).
type Breach struct {
	Objective string  `json:"objective"`
	Series    string  `json:"series"`
	At        float64 `json:"at"` // collector-clock end of the breaching window
	Value     float64 `json:"value"`
	Max       float64 `json:"max"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// objState is one objective plus its burn-sample ring and alert state.
type objState struct {
	obj   Objective
	ring  []float64 // trailing burn samples, ring of longWindows
	n     int       // samples seen (≤ cap grows to len(ring))
	next  int       // next ring write position
	state State

	value      float64 // latest window's value
	shortMean  float64
	longMean   float64
	staleSecs  float64 // KindStaleness accumulator
	breaches   int64
	lastChange float64

	stateGauge *metrics.Gauge
	burnGauge  *metrics.Gauge
}

// Watchdog evaluates a set of objectives over sealed telemetry windows.
// Create with New, attach with Bind (or feed snapshots directly via Observe),
// read with Status, subscribe with OnBreach.
type Watchdog struct {
	mu       sync.Mutex
	objs     []*objState
	onBreach []func(Breach)
	windows  uint64
	lastSeal float64
}

// New builds a watchdog over the given objectives. Objectives with Max <= 0
// or an empty Series are rejected.
func New(objs ...Objective) (*Watchdog, error) {
	w := &Watchdog{}
	for _, o := range objs {
		if o.Name == "" {
			o.Name = o.Series
		}
		if o.Series == "" {
			return nil, fmt.Errorf("slo: objective %q has no series", o.Name)
		}
		if o.Max <= 0 {
			return nil, fmt.Errorf("slo: objective %q needs Max > 0, got %g", o.Name, o.Max)
		}
		w.objs = append(w.objs, &objState{
			obj:  o,
			ring: make([]float64, o.longWindows()),
		})
	}
	return w, nil
}

// Bind subscribes the watchdog to the collector's sealed windows. Call once,
// before the collector starts sealing.
func (w *Watchdog) Bind(col *timeseries.Collector) {
	if w == nil || col == nil {
		return
	}
	col.OnSealed(w.Observe)
}

// OnBreach registers a callback fired on every transition into Burning. The
// callback runs on the sealing goroutine with the watchdog unlocked — do
// heavy work (incident capture) asynchronously.
func (w *Watchdog) OnBreach(fn func(Breach)) {
	if w == nil || fn == nil {
		return
	}
	w.mu.Lock()
	w.onBreach = append(w.onBreach, fn)
	w.mu.Unlock()
}

// EnableMetrics registers per-objective state and burn gauges on reg:
// slo_<name>_state (0 healthy / 1 warning / 2 burning) and slo_<name>_burn
// (the short-window burn mean).
func (w *Watchdog) EnableMetrics(reg *metrics.Registry) {
	if w == nil || reg == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, os := range w.objs {
		base := "slo_" + sanitizeMetric(os.obj.Name)
		os.stateGauge = reg.Gauge(base+"_state", "SLO state of "+os.obj.Name+" (0 healthy, 1 warning, 2 burning)")
		os.burnGauge = reg.Gauge(base+"_burn", "short-window burn-rate mean of "+os.obj.Name)
	}
}

// sanitizeMetric maps an objective name onto the prometheus-safe charset.
func sanitizeMetric(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Observe folds one sealed window into every objective — the OnSealed hook.
// It is safe for concurrent use, though seals are naturally serialized by the
// collector's owner.
//
//wdm:coldpath runs once per sealed telemetry window (seconds apart), not per request; breach capture is rarer still
func (w *Watchdog) Observe(s *timeseries.Snapshot) {
	if w == nil || s == nil {
		return
	}
	w.mu.Lock()
	w.windows++
	w.lastSeal = s.End
	var fired []Breach
	for _, os := range w.objs {
		if b, breached := os.observe(s); breached {
			fired = append(fired, b)
		}
	}
	callbacks := w.onBreach
	w.mu.Unlock()
	for _, b := range fired {
		for _, fn := range callbacks {
			fn(b)
		}
	}
}

// observe evaluates one objective against one sealed window; the caller
// holds the watchdog lock. It reports a Breach on a transition into Burning.
func (os *objState) observe(s *timeseries.Snapshot) (Breach, bool) {
	os.value = os.extract(s)
	burn := os.value / os.obj.Max

	os.ring[os.next] = burn
	os.next = (os.next + 1) % len(os.ring)
	if os.n < len(os.ring) {
		os.n++
	}

	short := os.obj.shortWindows()
	if short > os.n {
		short = os.n
	}
	var shortSum, longSum float64
	for i := 0; i < os.n; i++ {
		// Walk backwards from the latest sample.
		v := os.ring[(os.next-1-i+len(os.ring))%len(os.ring)]
		longSum += v
		if i < short {
			shortSum += v
		}
	}
	os.shortMean = shortSum / float64(short)
	os.longMean = longSum / float64(os.n)

	prev := os.state
	switch {
	case os.shortMean >= os.obj.shortBurn() && os.longMean >= os.obj.longBurn():
		os.state = Burning
	case os.shortMean >= os.obj.warnBurn() || os.longMean >= os.obj.warnBurn():
		os.state = Warning
	default:
		os.state = Healthy
	}
	if os.state != prev {
		os.lastChange = s.End
	}
	os.stateGauge.Set(float64(os.state))
	os.burnGauge.Set(os.shortMean)

	if os.state == Burning && prev != Burning {
		os.breaches++
		return Breach{
			Objective: os.obj.Name,
			Series:    os.obj.Series,
			At:        s.End,
			Value:     os.value,
			Max:       os.obj.Max,
			ShortBurn: os.shortMean,
			LongBurn:  os.longMean,
		}, true
	}
	return Breach{}, false
}

// extract reads the objective's value out of one sealed window.
func (os *objState) extract(s *timeseries.Snapshot) float64 {
	switch os.obj.Kind {
	case KindP99:
		h, ok := s.Hist(os.obj.Series)
		if !ok || h.Count == 0 {
			return 0
		}
		return h.P99
	case KindRatio:
		r, ok := s.RatioOf(os.obj.Series)
		if !ok {
			return 0
		}
		return r.Value
	case KindRate:
		r, ok := s.RateOf(os.obj.Series)
		if !ok {
			return 0
		}
		return r.Rate
	case KindStaleness:
		r, ok := s.RateOf(os.obj.Series)
		if ok && r.Count > 0 {
			os.staleSecs = 0
			return 0
		}
		os.staleSecs += s.End - s.Start
		return os.staleSecs
	}
	return 0
}

// ObjectiveStatus is one objective's row in the /debug/slo payload.
type ObjectiveStatus struct {
	Name       string  `json:"name"`
	Series     string  `json:"series"`
	Kind       string  `json:"kind"`
	State      string  `json:"state"`
	Max        float64 `json:"max"`
	Value      float64 `json:"value"`
	ShortBurn  float64 `json:"short_burn"`
	LongBurn   float64 `json:"long_burn"`
	Breaches   int64   `json:"breaches"`
	LastChange float64 `json:"last_change"`
}

// Status is the /debug/slo payload: the worst state across objectives plus
// every objective's detail.
type Status struct {
	Time       float64           `json:"t"` // collector clock of the last seal
	Windows    uint64            `json:"windows"`
	State      string            `json:"state"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Status reports the watchdog's current view.
func (w *Watchdog) Status() Status {
	if w == nil {
		return Status{State: Healthy.String()}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{Time: w.lastSeal, Windows: w.windows, Objectives: make([]ObjectiveStatus, 0, len(w.objs))}
	worst := Healthy
	for _, os := range w.objs {
		if os.state > worst {
			worst = os.state
		}
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Name:       os.obj.Name,
			Series:     os.obj.Series,
			Kind:       os.obj.Kind.String(),
			State:      os.state.String(),
			Max:        os.obj.Max,
			Value:      os.value,
			ShortBurn:  os.shortMean,
			LongBurn:   os.longMean,
			Breaches:   os.breaches,
			LastChange: os.lastChange,
		})
	}
	st.State = worst.String()
	return st
}
