package cli

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/explain"
)

// DebugMux builds the debug HTTP handler shared by wdmsim -serve and tests:
//
//	/healthz              liveness probe (200 "ok")
//	/metrics              Prometheus text exposition of reg (404 if reg is nil)
//	/debug/flight         flight-recorder dump as JSONL, oldest trace first
//	/debug/explain/<id>   explain report for request <id> (JSON; ?format=text)
//	/debug/pprof/*        the standard runtime profiles
//
// Unlike StartPprof this never touches http.DefaultServeMux, so several
// servers (or tests) can coexist in one process.
func DebugMux(reg *metrics.Registry, fr *obs.FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		// Dump into a buffer first: once a partial body is on the wire the
		// status code is committed, so encoding errors could no longer be
		// reported to the client.
		var buf bytes.Buffer
		if err := fr.Dump(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/explain/", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/debug/explain/")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad request id %q", idStr), http.StatusBadRequest)
			return
		}
		tc := fr.Find(id)
		if tc == nil {
			http.Error(w, fmt.Sprintf("request %d not in the flight recorder (evicted or never traced)", id), http.StatusNotFound)
			return
		}
		rep, ok := tc.Payload.(*explain.Report)
		if !ok {
			http.Error(w, fmt.Sprintf("request %d has no explain report (status %s)", id, tc.Status), http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		if r.URL.Query().Get("format") == "text" {
			err = rep.WriteText(&buf)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			err = rep.WriteJSON(&buf)
			w.Header().Set("Content-Type", "application/json")
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr (e.g. "localhost:0"), serves DebugMux in a
// background goroutine, and returns the bound address for log lines and CI
// probes. The listener lives until the process exits.
func StartDebugServer(addr string, reg *metrics.Registry, fr *obs.FlightRecorder) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, DebugMux(reg, fr)) }()
	return ln.Addr().String(), nil
}
