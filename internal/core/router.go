package core

import (
	"math"
	"sort"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/wdm"
)

// Router is the reusable engine behind the package-level routing functions.
// It owns every piece of per-request scratch state — the Suurballe workspace
// (two Dijkstra workspaces, residual graph, combine buffers) and a cache of
// auxiliary-graph skeletons keyed by (s, t, node-disjointness) — so that a
// long-lived caller (a simulator arrival loop, a benchmark worker) routes
// requests without rebuilding the auxiliary graph or reallocating search
// state on every call. The MinCog threshold search in particular reweights
// one skeleton per round instead of constructing a fresh graph per round.
//
// A Router is bound to the network of its most recent call; routing on a
// different *wdm.Network drops the skeleton cache (workspaces are kept, as
// they adapt to any graph size). Structural network changes (AddLink,
// SetConverter) invalidate cached skeletons automatically via the network's
// TopoVersion. A Router is not safe for concurrent use; give each goroutine
// its own (e.g. one per parallel.MapWithState worker).
type Router struct {
	opts  *Options
	net   *wdm.Network
	ws    disjoint.Workspace
	skels map[skelKey]*auxgraph.Skeleton
}

type skelKey struct {
	s, t         int
	nodeDisjoint bool
}

// NewRouter returns a Router with the given options (nil for defaults).
func NewRouter(opts *Options) *Router {
	return &Router{opts: opts}
}

// skeleton returns a valid cached skeleton for (s, t), building one on the
// first request for the pair, after a rebind to a different network, or after
// a structural network change.
func (r *Router) skeleton(net *wdm.Network, s, t int, nodeDisjoint bool) *auxgraph.Skeleton {
	if r.net != net {
		r.net = net
		clear(r.skels)
	}
	if r.skels == nil {
		r.skels = make(map[skelKey]*auxgraph.Skeleton)
	}
	k := skelKey{s: s, t: t, nodeDisjoint: nodeDisjoint}
	sk := r.skels[k]
	if sk == nil || !sk.Valid() {
		sk = auxgraph.NewSkeleton(net, s, t, nodeDisjoint)
		r.skels[k] = sk
	}
	return sk
}

// ApproxMinCost routes (s, t) per §3.3 — see the package-level ApproxMinCost.
func (r *Router) ApproxMinCost(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tb := instr.phaseBuild.Start()
	a := r.skeleton(net, s, t, false).Reweight(auxgraph.Params{Kind: auxgraph.Cost})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		return nil, false
	}
	res, ok := mapAndRefine(net, a, pair, r.opts)
	if ok {
		instr.routeFound.Inc()
	}
	return res, ok
}

// ApproxMinCostNodeDisjoint routes (s, t) with an internally node-disjoint
// pair — see the package-level ApproxMinCostNodeDisjoint.
func (r *Router) ApproxMinCostNodeDisjoint(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	tb := instr.phaseBuild.Start()
	a := r.skeleton(net, s, t, true).Reweight(auxgraph.Params{Kind: auxgraph.Cost, NodeDisjoint: true})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		return nil, false
	}
	res, ok := mapAndRefine(net, a, pair, r.opts)
	if !ok {
		return nil, false
	}
	// Defensive: the hub gadget guarantees this, so a violation would be a
	// construction bug.
	if !nodesDisjoint(net, res.Primary, res.Backup, s, t) {
		return nil, false
	}
	instr.routeFound.Inc()
	return res, true
}

// minCogSearch is the Find_Two_Paths_MinCog doubling threshold search (see
// the algorithm notes on the package-level MinLoad). Unlike the historical
// implementation it reweights one cached skeleton per round instead of
// building a fresh auxiliary graph, so a k-round search costs one structure
// build plus k cheap weight passes. The returned pair aliases the router's
// Suurballe workspace and must be consumed before the next routing call.
func (r *Router) minCogSearch(net *wdm.Network, s, t int, kind auxgraph.Kind) (theta float64, aOut *auxgraph.Aux, pairOut *disjoint.Pair, iters int, ok bool) {
	defer instr.phaseMinCog.Stop(instr.phaseMinCog.Start())
	defer func() { instr.mincogIters.Observe(float64(iters)) }()
	lo, hi, any := thetaBounds(net)
	if !any {
		return 0, nil, nil, 0, false
	}
	sk := r.skeleton(net, s, t, false)
	try := func(theta float64) (*auxgraph.Aux, *disjoint.Pair, bool) {
		a := sk.Reweight(auxgraph.Params{Kind: kind, Threshold: theta, Base: r.opts.base()})
		pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
		return a, pair, ok
	}
	delta := hi - lo
	if delta <= 1e-12 {
		// Uniform loads: the only meaningful graph is the full residual one.
		a, pair, ok := try(hi)
		return hi, a, pair, 1, ok
	}
	j0 := int(math.Ceil(math.Log2(1 / delta)))
	if j0 < 0 {
		j0 = 0
	}
	inc := delta / math.Pow(2, float64(j0))
	theta = lo
	maxIter := r.opts.maxIter()
	for iters < maxIter {
		iters++
		if theta >= hi {
			theta = hi
		}
		a, pair, ok := try(theta)
		if ok {
			return theta, a, pair, iters, true
		}
		if theta >= hi {
			return 0, nil, nil, iters, false // drop the request
		}
		theta += inc
		inc *= 2
	}
	// Iteration cap: last resort, the complete residual graph.
	iters++
	a, pair, ok := try(hi)
	return hi, a, pair, iters, ok
}

// MinLoad routes (s, t) per §4.1 — see the package-level MinLoad.
func (r *Router) MinLoad(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	theta, a, pair, iters, ok := r.minCogSearch(net, s, t, auxgraph.Load)
	if !ok {
		return nil, false
	}
	res, ok := mapAndRefine(net, a, pair, r.opts)
	if !ok {
		return nil, false
	}
	res.Threshold = theta
	res.Iterations = iters
	instr.routeFound.Inc()
	return res, true
}

// MinLoadCost routes (s, t) per §4.2 — see the package-level MinLoadCost.
func (r *Router) MinLoadCost(net *wdm.Network, s, t int) (*Result, bool) {
	instr.routeCalls.Inc()
	theta, _, _, iters, ok := r.minCogSearch(net, s, t, auxgraph.Load)
	if !ok {
		return nil, false
	}
	sk := r.skeleton(net, s, t, false)
	tb := instr.phaseBuild.Start()
	a := sk.Reweight(auxgraph.Params{Kind: auxgraph.LoadCost, Threshold: theta, Base: r.opts.base()})
	instr.phaseBuild.Stop(tb)
	td := instr.phaseDisjoint.Start()
	pair, ok := r.ws.Suurballe(a.G, a.S, a.T)
	instr.phaseDisjoint.Stop(td)
	if !ok {
		// ϑ was certified feasible on the identical G_c skeleton; reaching
		// here means numerics only. Fall back to the full residual graph.
		a = sk.Reweight(auxgraph.Params{Kind: auxgraph.LoadCost, Threshold: math.Inf(1)})
		pair, ok = r.ws.Suurballe(a.G, a.S, a.T)
		if !ok {
			return nil, false
		}
	}
	res, ok := mapAndRefine(net, a, pair, r.opts)
	if !ok {
		return nil, false
	}
	res.Threshold = theta
	res.Iterations = iters
	instr.routeFound.Inc()
	return res, true
}

// TwoStepMinCost is the naive baseline — see the package-level TwoStepMinCost.
// It uses no auxiliary graph, so the Router adds nothing beyond a uniform
// call surface.
func (r *Router) TwoStepMinCost(net *wdm.Network, s, t int) (*Result, bool) {
	return TwoStepMinCost(net, s, t, r.opts)
}

// OptimalLoadOracle computes the exact minimum achievable path load — see the
// package-level OptimalLoadOracle. Each candidate cap reweights the same
// cached skeleton.
func (r *Router) OptimalLoadOracle(net *wdm.Network, s, t int) (float64, bool) {
	ratios := map[float64]bool{}
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.Avail().Empty() || l.N() == 0 {
			continue
		}
		ratios[float64(l.U()+1)/float64(l.N())] = true
	}
	if len(ratios) == 0 {
		return 0, false
	}
	cands := make([]float64, 0, len(ratios))
	for r := range ratios {
		cands = append(cands, r)
	}
	sort.Float64s(cands)
	sk := r.skeleton(net, s, t, false)
	for _, c := range cands {
		// Exact filter: keep exactly the links whose post-routing ratio
		// (U+1)/N stays within the candidate cap.
		a := sk.Reweight(auxgraph.Params{
			Kind: auxgraph.Load,
			Filter: func(id int) bool {
				l := net.Link(id)
				return float64(l.U()+1)/float64(l.N()) <= c+1e-12
			},
		})
		if _, ok := r.ws.Suurballe(a.G, a.S, a.T); ok {
			return c, true
		}
	}
	return 0, false
}
