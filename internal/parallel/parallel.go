// Package parallel runs experiment sweeps across goroutines with
// deterministic results: each task owns its index (and derives its own seed
// from it), so the output is independent of scheduling. This is the fan-out
// layer the benchmark harness uses to fill all cores.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map evaluates fn(i) for i in [0, n) using up to workers goroutines
// (workers ≤ 0 selects GOMAXPROCS) and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	return MapWithState(n, workers,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) })
}

// MapWithState is Map with per-worker state: mk is called once per worker
// goroutine and its value is passed to every fn call that worker executes.
// This is how sweeps give each worker its own reusable scratch (a
// core.Router, an RNG, a decoder buffer) without sharing it across
// goroutines or recreating it per task. Determinism is unchanged — results
// depend only on the task index, and state must not leak information between
// tasks that would make fn(i) depend on scheduling.
func MapWithState[S, T any](n, workers int, mk func() S, fn func(state S, i int) T) []T {
	if n < 0 {
		panic("parallel: negative task count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		state := mk()
		for i := 0; i < n; i++ {
			out[i] = fn(state, i)
		}
		return out
	}
	// Lock-free work claiming: each worker atomically takes the next index.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			state := mk()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				out[i] = fn(state, int(i))
			}
		}()
	}
	wg.Wait()
	return out
}

// ForEach is Map without results.
func ForEach(n, workers int, fn func(i int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}

// Reduce runs fn over [0, n) in parallel and folds the results with combine
// in index order (combine must be associative for the fold order to be
// irrelevant; it is applied sequentially left-to-right over the ordered
// results, so any binary op works deterministically).
func Reduce[T, A any](n, workers int, zero A, fn func(i int) T, combine func(A, T) A) A {
	results := Map(n, workers, fn)
	acc := zero
	for _, r := range results {
		acc = combine(acc, r)
	}
	return acc
}
